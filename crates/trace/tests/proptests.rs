//! Property tests for trace serialization and aggregation.

use proptest::prelude::*;
use wrm_trace::{
    characterize, trace_from_csv, trace_to_csv, SpanKind, Structure, Trace, TraceSpan,
};

fn span_kind() -> impl Strategy<Value = SpanKind> {
    prop_oneof![
        (0.0f64..1e18).prop_map(|flops| SpanKind::Compute { flops }),
        ("[a-z]{1,8}", 0.0f64..1e15)
            .prop_map(|(resource, bytes)| SpanKind::NodeData { resource, bytes }),
        ("[a-z]{1,8}", 0.0f64..1e15)
            .prop_map(|(resource, bytes)| SpanKind::SystemData { resource, bytes }),
        "[a-z_]{1,12}".prop_map(|label| SpanKind::Overhead { label }),
    ]
}

prop_compose! {
    fn spans()(raw in prop::collection::vec(
        ("[a-z0-9_]{1,10}", 0.0f64..1e6, 0.0f64..1e5, 1u64..1024, span_kind()),
        0..40,
    )) -> Vec<TraceSpan> {
        raw.into_iter()
            .map(|(task, start, len, nodes, kind)| {
                TraceSpan::new(task, kind, start, start + len, nodes)
            })
            .collect()
    }
}

prop_compose! {
    fn traces()(spans in spans()) -> Trace {
        let mut t = Trace::new("prop", "machine");
        for s in spans {
            t.push(s);
        }
        t
    }
}

proptest! {
    #[test]
    fn jsonl_round_trips_exactly(trace in traces()) {
        let text = trace.to_jsonl();
        let back = Trace::from_jsonl(&text).unwrap();
        prop_assert_eq!(&back, &trace);
    }

    #[test]
    fn csv_round_trips_exactly(trace in traces()) {
        let csv = trace_to_csv(&trace);
        let back = trace_from_csv(trace.workflow.clone(), trace.machine.clone(), &csv).unwrap();
        prop_assert_eq!(&back, &trace);
    }

    #[test]
    fn breakdown_total_equals_sum_of_durations(trace in traces()) {
        let total: f64 = trace.spans.iter().map(wrm_trace::TraceSpan::duration).sum();
        let b = trace.breakdown();
        prop_assert!((b.total() - total).abs() <= 1e-6 * total.max(1.0));
    }

    #[test]
    fn makespan_covers_every_span(trace in traces()) {
        let m = trace.makespan();
        if trace.spans.is_empty() {
            prop_assert_eq!(m, 0.0);
            return Ok(());
        }
        let start = trace.spans.iter().map(|s| s.start).fold(f64::INFINITY, f64::min);
        for s in &trace.spans {
            prop_assert!(s.end - start <= m * (1.0 + 1e-12) + 1e-12);
        }
        // Task times never exceed the makespan.
        for name in trace.task_names() {
            prop_assert!(trace.task_time(&name).unwrap() <= m * (1.0 + 1e-12) + 1e-12);
        }
    }

    #[test]
    fn characterization_volume_conservation(trace in traces()) {
        let wf = characterize(&trace, &Structure::new(8.0, 4.0, 2)).unwrap();
        // System volumes equal the trace's per-resource sums.
        let sys = trace.system_bytes();
        for (id, bytes) in &wf.system_volumes {
            let expected = sys[id.as_str()];
            prop_assert!((bytes.get() - expected).abs() <= 1e-6 * expected.max(1.0));
        }
        prop_assert_eq!(wf.system_volumes.len(), sys.len());
        // Total flops are conserved up to the per-node / per-slot split:
        // sum over spans of flops/nodes/slots.
        let expected: f64 = trace
            .spans
            .iter()
            .map(|s| match s.kind {
                SpanKind::Compute { flops } => flops / s.nodes as f64 / 4.0,
                _ => 0.0,
            })
            .sum();
        let got = wf
            .node_volumes
            .get("compute")
            .map_or(0.0, |w| w.magnitude());
        prop_assert!((got - expected).abs() <= 1e-6 * expected.max(1.0));
    }

    #[test]
    fn io_summary_totals_match(trace in traces()) {
        let sys = trace.system_bytes();
        for s in trace.io_summary() {
            prop_assert!((s.bytes - sys[s.resource.as_str()]).abs() <= 1e-6);
            prop_assert!(s.transfers >= 1);
            prop_assert!(s.mean_bandwidth() >= 0.0);
        }
    }
}
