//! Trace records: phase-level spans emitted by a workflow execution
//! (simulated in `wrm-sim`, or imported from real timing reports).
//!
//! The paper stresses *lightweight* metrics: per task we only record what
//! the model consumes — wall-clock spans, data volumes per resource, and
//! FLOP counts — never per-rank hardware counters.

use serde::{Deserialize, Serialize};
use std::fmt;

/// What a span spent its time on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum SpanKind {
    /// Node-local floating-point computation.
    Compute {
        /// Total FLOPs retired by the task across all its nodes.
        flops: f64,
    },
    /// Node-local data movement (DRAM, HBM, PCIe).
    NodeData {
        /// Node resource id (matches `wrm_core::ids`).
        resource: String,
        /// Total bytes moved by the task across all its nodes.
        bytes: f64,
    },
    /// Shared-system data movement (file system, NICs, external links).
    SystemData {
        /// System resource id.
        resource: String,
        /// Total bytes moved by the task.
        bytes: f64,
    },
    /// Fixed control-flow overhead (bash, python, srun, metadata).
    Overhead {
        /// Overhead label for breakdown charts.
        label: String,
    },
}

impl SpanKind {
    /// The breakdown-category name for this kind.
    pub fn category(&self) -> String {
        match self {
            SpanKind::Compute { .. } => "compute".to_owned(),
            SpanKind::NodeData { resource, .. } => format!("node:{resource}"),
            SpanKind::SystemData { resource, .. } => format!("io:{resource}"),
            SpanKind::Overhead { label } => label.clone(),
        }
    }

    /// Bytes carried by the span, when it moves data.
    pub fn bytes(&self) -> Option<f64> {
        match self {
            SpanKind::NodeData { bytes, .. } | SpanKind::SystemData { bytes, .. } => Some(*bytes),
            _ => None,
        }
    }
}

/// One timed phase of one task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSpan {
    /// Task name the span belongs to.
    pub task: String,
    /// What the time was spent on.
    pub kind: SpanKind,
    /// Start time, seconds from workflow start.
    pub start: f64,
    /// End time, seconds from workflow start.
    pub end: f64,
    /// Nodes the task held during the span.
    pub nodes: u64,
}

impl TraceSpan {
    /// Creates a span; panics in debug builds when `end < start`.
    pub fn new(task: impl Into<String>, kind: SpanKind, start: f64, end: f64, nodes: u64) -> Self {
        debug_assert!(end >= start, "span ends before it starts");
        Self {
            task: task.into(),
            kind,
            start,
            end,
            nodes,
        }
    }

    /// Span duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// Achieved bandwidth over the span, for data spans with time.
    pub fn achieved_bandwidth(&self) -> Option<f64> {
        let bytes = self.kind.bytes()?;
        let d = self.duration();
        if d > 0.0 {
            Some(bytes / d)
        } else {
            None
        }
    }
}

impl fmt::Display for TraceSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>10.3}s..{:>10.3}s] {} {} ({} nodes)",
            self.start,
            self.end,
            self.task,
            self.kind.category(),
            self.nodes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories() {
        assert_eq!(SpanKind::Compute { flops: 1.0 }.category(), "compute");
        assert_eq!(
            SpanKind::NodeData {
                resource: "hbm".into(),
                bytes: 1.0
            }
            .category(),
            "node:hbm"
        );
        assert_eq!(
            SpanKind::SystemData {
                resource: "fs".into(),
                bytes: 1.0
            }
            .category(),
            "io:fs"
        );
        assert_eq!(
            SpanKind::Overhead {
                label: "python".into()
            }
            .category(),
            "python"
        );
    }

    #[test]
    fn bandwidth_and_duration() {
        let s = TraceSpan::new(
            "t",
            SpanKind::SystemData {
                resource: "ext".into(),
                bytes: 1e12,
            },
            10.0,
            1010.0,
            32,
        );
        assert!((s.duration() - 1000.0).abs() < 1e-12);
        assert!((s.achieved_bandwidth().unwrap() - 1e9).abs() < 1e-3);
        let z = TraceSpan::new("t", SpanKind::Overhead { label: "b".into() }, 1.0, 1.0, 1);
        assert_eq!(z.achieved_bandwidth(), None);
        assert!(z.to_string().contains("t"));
    }

    #[test]
    fn serde_round_trip_all_kinds() {
        let spans = vec![
            TraceSpan::new("a", SpanKind::Compute { flops: 2e15 }, 0.0, 5.0, 64),
            TraceSpan::new(
                "a",
                SpanKind::NodeData {
                    resource: "pcie".into(),
                    bytes: 8e10,
                },
                5.0,
                6.0,
                64,
            ),
            TraceSpan::new(
                "a",
                SpanKind::SystemData {
                    resource: "fs".into(),
                    bytes: 7e10,
                },
                6.0,
                7.0,
                64,
            ),
            TraceSpan::new(
                "a",
                SpanKind::Overhead {
                    label: "srun".into(),
                },
                7.0,
                9.0,
                64,
            ),
        ];
        for s in spans {
            let json = serde_json::to_string(&s).unwrap();
            let back: TraceSpan = serde_json::from_str(&json).unwrap();
            assert_eq!(s, back);
        }
    }
}
