//! # wrm-trace — lightweight workflow traces
//!
//! Phase-level spans ([`TraceSpan`]) collected into a [`Trace`], with the
//! aggregations the Workflow Roofline Model consumes: makespans, time
//! breakdowns (paper Fig. 5b / Fig. 10b), per-resource data volumes,
//! Darshan-like I/O digests, and conversion to a
//! [`wrm_core::WorkflowCharacterization`] via [`characterize`].
//!
//! Traces serialize as JSON lines (`Trace::to_jsonl` /
//! `Trace::from_jsonl`) so simulated and imported runs share one format.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod characterize;
pub mod import;
pub mod span;
pub mod trace;

pub use characterize::{characterize, Structure};
pub use import::{trace_from_csv, trace_to_csv, ImportError};
pub use span::{SpanKind, TraceSpan};
pub use trace::{IoSummary, TimeBreakdown, Trace};
