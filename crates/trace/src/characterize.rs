//! Converting an execution trace into a [`WorkflowCharacterization`]:
//! the bridge from measurement to the Workflow Roofline Model.
//!
//! Volume semantics follow `wrm_core::charz`: node volumes are *per node,
//! per parallel slot* over the whole workflow, so each span contributes
//! `volume / span.nodes`, and the per-task sum is divided by the number
//! of parallel slots.

use crate::span::SpanKind;
use crate::trace::Trace;
use serde::{Deserialize, Serialize};
use wrm_core::{Bytes, CoreError, Flops, Seconds, TargetSpec, Work, WorkflowCharacterization};

/// Structural facts the trace alone cannot know: they come from the
/// workflow description (sbatch/WDL metadata), exactly as in the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Structure {
    /// Total tasks in the workflow.
    pub total_tasks: f64,
    /// Concurrently-runnable tasks.
    pub parallel_tasks: f64,
    /// Nodes per task.
    pub nodes_per_task: u64,
    /// Optional targets carried into the characterization.
    pub targets: TargetSpec,
}

impl Structure {
    /// A single serial task on `nodes` nodes.
    pub fn serial(nodes: u64) -> Self {
        Self {
            total_tasks: 1.0,
            parallel_tasks: 1.0,
            nodes_per_task: nodes,
            targets: TargetSpec::NONE,
        }
    }

    /// `parallel` of `total` tasks runnable concurrently, `nodes` each.
    pub fn new(total: f64, parallel: f64, nodes: u64) -> Self {
        Self {
            total_tasks: total,
            parallel_tasks: parallel,
            nodes_per_task: nodes,
            targets: TargetSpec::NONE,
        }
    }

    /// Attaches targets.
    pub fn with_targets(mut self, targets: TargetSpec) -> Self {
        self.targets = targets;
        self
    }
}

/// Builds a characterization from a trace and the workflow structure.
///
/// The measured makespan is the trace's wall time; volumes are aggregated
/// from the spans. Overhead spans contribute time but no volume — which is
/// exactly how control-flow-bound workflows (GPTune) end up far below
/// every ceiling.
pub fn characterize(
    trace: &Trace,
    structure: &Structure,
) -> Result<WorkflowCharacterization, CoreError> {
    let mut builder = WorkflowCharacterization::builder(trace.workflow.clone())
        .total_tasks(structure.total_tasks)
        .parallel_tasks(structure.parallel_tasks)
        .nodes_per_task(structure.nodes_per_task)
        .targets(structure.targets);

    let makespan = trace.makespan();
    if makespan > 0.0 {
        builder = builder.makespan(Seconds(makespan));
    }

    let slot = structure.parallel_tasks;
    let mut compute_per_node = 0.0f64;
    for span in &trace.spans {
        match &span.kind {
            SpanKind::Compute { flops } => {
                compute_per_node += flops / span.nodes.max(1) as f64;
            }
            SpanKind::NodeData { resource, bytes } => {
                builder = builder.node_volume(
                    resource.as_str(),
                    Work::Bytes(Bytes(bytes / span.nodes.max(1) as f64 / slot)),
                );
            }
            SpanKind::SystemData { resource, bytes } => {
                builder = builder.system_volume(resource.as_str(), Bytes(*bytes));
            }
            SpanKind::Overhead { .. } => {}
        }
    }
    if compute_per_node > 0.0 {
        builder = builder.node_volume(
            wrm_core::ids::COMPUTE,
            Work::Flops(Flops(compute_per_node / slot)),
        );
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::TraceSpan;
    use wrm_core::ids;

    /// A synthetic LCLS-shaped trace: five 32-node analyses each moving
    /// 1 TB external and 32 GB/node DRAM, then a merge.
    fn lcls_trace() -> Trace {
        let mut t = Trace::new("LCLS", "Cori Haswell");
        for i in 0..5 {
            let task = format!("analyze[{i}]");
            t.push(TraceSpan::new(
                task.clone(),
                SpanKind::SystemData {
                    resource: ids::EXTERNAL.into(),
                    bytes: 1e12,
                },
                0.0,
                1000.0,
                32,
            ));
            t.push(TraceSpan::new(
                task,
                SpanKind::NodeData {
                    resource: ids::DRAM.into(),
                    bytes: 32e9 * 32.0,
                },
                1000.0,
                1012.0,
                32,
            ));
        }
        t.push(TraceSpan::new(
            "merge",
            SpanKind::SystemData {
                resource: ids::FILE_SYSTEM.into(),
                bytes: 5e9,
            },
            1012.0,
            1020.0,
            1,
        ));
        t
    }

    #[test]
    fn lcls_characterization_matches_appendix_inputs() {
        let c = characterize(&lcls_trace(), &Structure::new(6.0, 5.0, 32)).unwrap();
        assert_eq!(c.name, "LCLS");
        assert!((c.makespan.unwrap().get() - 1020.0).abs() < 1e-9);
        // System external: 5 tasks x 1 TB.
        assert!((c.system_volumes[ids::EXTERNAL].get() - 5e12).abs() < 1.0);
        // Per-node DRAM volume: 32 GB (one task per slot).
        let w = &c.node_volumes[ids::DRAM];
        assert!((w.magnitude() - 32e9).abs() < 1.0);
    }

    #[test]
    fn compute_flops_are_aggregated_per_slot() {
        // BGW-shaped: two serial tasks on the same 64 nodes.
        let mut t = Trace::new("BGW", "PM-GPU");
        t.push(TraceSpan::new(
            "Epsilon",
            SpanKind::Compute { flops: 1164e15 },
            0.0,
            1200.0,
            64,
        ));
        t.push(TraceSpan::new(
            "Sigma",
            SpanKind::Compute { flops: 3226e15 },
            1200.0,
            4185.0,
            64,
        ));
        let c = characterize(&t, &Structure::new(2.0, 1.0, 64)).unwrap();
        let w = &c.node_volumes[ids::COMPUTE];
        assert!((w.magnitude() - 4390e15 / 64.0).abs() < 1e6);
        assert!((c.makespan.unwrap().get() - 4185.0).abs() < 1e-9);
    }

    #[test]
    fn overhead_contributes_time_but_no_volume() {
        let mut t = Trace::new("GPTune", "PM-CPU");
        t.push(TraceSpan::new(
            "iter[0]",
            SpanKind::Overhead {
                label: "python".into(),
            },
            0.0,
            400.0,
            1,
        ));
        t.push(TraceSpan::new(
            "iter[0]",
            SpanKind::SystemData {
                resource: ids::FILE_SYSTEM.into(),
                bytes: 45e6,
            },
            400.0,
            430.0,
            1,
        ));
        let c = characterize(&t, &Structure::serial(1)).unwrap();
        assert!(c.node_volumes.is_empty());
        assert!((c.system_volumes[ids::FILE_SYSTEM].get() - 45e6).abs() < 1.0);
        assert!((c.makespan.unwrap().get() - 430.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_has_no_makespan() {
        let t = Trace::new("w", "m");
        let c = characterize(&t, &Structure::serial(1)).unwrap();
        assert!(c.makespan.is_none());
        assert!(c.node_volumes.is_empty());
        assert!(c.system_volumes.is_empty());
    }

    #[test]
    fn structure_builders() {
        let s = Structure::serial(4).with_targets(TargetSpec::new(
            Seconds::secs(100.0),
            wrm_core::TasksPerSec(0.01),
        ));
        assert_eq!(s.nodes_per_task, 4);
        assert!(s.targets.makespan.is_some());
    }
}
