//! A workflow trace: the ordered collection of spans from one execution,
//! with the aggregations the Workflow Roofline Model consumes.

use crate::span::{SpanKind, TraceSpan};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A complete execution trace of one workflow run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Workflow name.
    pub workflow: String,
    /// Machine name the run executed on.
    pub machine: String,
    /// All spans (unordered; aggregations sort as needed).
    pub spans: Vec<TraceSpan>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new(workflow: impl Into<String>, machine: impl Into<String>) -> Self {
        Self {
            workflow: workflow.into(),
            machine: machine.into(),
            spans: Vec::new(),
        }
    }

    /// Appends a span.
    pub fn push(&mut self, span: TraceSpan) {
        self.spans.push(span);
    }

    /// End-to-end wall time: latest end minus earliest start (0 when
    /// empty). Queue wait before the first span is, by construction, not
    /// included — matching the paper's makespan definition.
    pub fn makespan(&self) -> f64 {
        let start = self
            .spans
            .iter()
            .map(|s| s.start)
            .fold(f64::INFINITY, f64::min);
        let end = self.spans.iter().map(|s| s.end).fold(0.0f64, f64::max);
        if start.is_finite() {
            end - start
        } else {
            0.0
        }
    }

    /// Distinct task names in first-appearance order.
    pub fn task_names(&self) -> Vec<String> {
        let mut seen = std::collections::BTreeSet::new();
        let mut names = Vec::new();
        for s in &self.spans {
            if seen.insert(s.task.clone()) {
                names.push(s.task.clone());
            }
        }
        names
    }

    /// Wall time of one task: latest end minus earliest start of its
    /// spans.
    pub fn task_time(&self, task: &str) -> Option<f64> {
        let mut start = f64::INFINITY;
        let mut end = f64::NEG_INFINITY;
        for s in self.spans.iter().filter(|s| s.task == task) {
            start = start.min(s.start);
            end = end.max(s.end);
        }
        if start.is_finite() {
            Some(end - start)
        } else {
            None
        }
    }

    /// Time per breakdown category (the stacked bars of Fig. 5b and
    /// Fig. 10b). Durations of the same category add up across tasks.
    pub fn breakdown(&self) -> TimeBreakdown {
        let mut map: BTreeMap<String, f64> = BTreeMap::new();
        for s in &self.spans {
            *map.entry(s.kind.category()).or_insert(0.0) += s.duration();
        }
        TimeBreakdown {
            label: self.workflow.clone(),
            categories: map.into_iter().collect(),
        }
    }

    /// Total bytes through each system resource.
    pub fn system_bytes(&self) -> BTreeMap<String, f64> {
        let mut map = BTreeMap::new();
        for s in &self.spans {
            if let SpanKind::SystemData { resource, bytes } = &s.kind {
                *map.entry(resource.clone()).or_insert(0.0) += bytes;
            }
        }
        map
    }

    /// Total bytes through each node resource (summed over tasks).
    pub fn node_bytes(&self) -> BTreeMap<String, f64> {
        let mut map = BTreeMap::new();
        for s in &self.spans {
            if let SpanKind::NodeData { resource, bytes } = &s.kind {
                *map.entry(resource.clone()).or_insert(0.0) += bytes;
            }
        }
        map
    }

    /// Total FLOPs across all tasks.
    pub fn total_flops(&self) -> f64 {
        self.spans
            .iter()
            .map(|s| match s.kind {
                SpanKind::Compute { flops } => flops,
                _ => 0.0,
            })
            .sum()
    }

    /// Total time spent in overhead spans (control flow).
    pub fn overhead_time(&self) -> f64 {
        self.spans
            .iter()
            .filter(|s| matches!(s.kind, SpanKind::Overhead { .. }))
            .map(TraceSpan::duration)
            .sum()
    }

    /// An I/O summary per system resource (a Darshan-like digest).
    pub fn io_summary(&self) -> Vec<IoSummary> {
        let mut map: BTreeMap<String, IoSummary> = BTreeMap::new();
        for s in &self.spans {
            if let SpanKind::SystemData { resource, bytes } = &s.kind {
                let e = map.entry(resource.clone()).or_insert_with(|| IoSummary {
                    resource: resource.clone(),
                    bytes: 0.0,
                    transfers: 0,
                    busy_time: 0.0,
                });
                e.bytes += bytes;
                e.transfers += 1;
                e.busy_time += s.duration();
            }
        }
        map.into_values().collect()
    }

    /// Writes the trace as JSON lines: one header line, then one line per
    /// span.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let header = serde_json::json!({
            "workflow": self.workflow,
            "machine": self.machine,
            "spans": self.spans.len(),
        });
        out.push_str(&header.to_string());
        out.push('\n');
        for s in &self.spans {
            out.push_str(&serde_json::to_string(s).expect("span serializes"));
            out.push('\n');
        }
        out
    }

    /// Parses the JSONL format produced by [`Trace::to_jsonl`].
    pub fn from_jsonl(text: &str) -> Result<Self, serde_json::Error> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header: serde_json::Value = match lines.next() {
            Some(l) => serde_json::from_str(l)?,
            None => return Ok(Trace::default()),
        };
        let mut trace = Trace::new(
            header["workflow"].as_str().unwrap_or_default(),
            header["machine"].as_str().unwrap_or_default(),
        );
        for line in lines {
            trace.push(serde_json::from_str(line)?);
        }
        Ok(trace)
    }
}

/// Stacked time breakdown (Fig. 5b, Fig. 10b).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// Bar label (workflow or mode name).
    pub label: String,
    /// `(category, seconds)` pairs, sorted by category name.
    pub categories: Vec<(String, f64)>,
}

impl TimeBreakdown {
    /// Total time across categories.
    pub fn total(&self) -> f64 {
        self.categories.iter().map(|(_, t)| t).sum()
    }

    /// Seconds in one category (0 when absent).
    pub fn get(&self, category: &str) -> f64 {
        self.categories
            .iter()
            .find(|(c, _)| c == category)
            .map_or(0.0, |(_, t)| *t)
    }
}

/// Darshan-like per-resource I/O digest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IoSummary {
    /// System resource id.
    pub resource: String,
    /// Total bytes transferred.
    pub bytes: f64,
    /// Number of transfer spans.
    pub transfers: u64,
    /// Total busy time of the spans (overlaps counted per span).
    pub busy_time: f64,
}

impl IoSummary {
    /// Mean achieved bandwidth (bytes / busy time).
    pub fn mean_bandwidth(&self) -> f64 {
        if self.busy_time > 0.0 {
            self.bytes / self.busy_time
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new("lcls", "cori");
        for i in 0..5 {
            t.push(TraceSpan::new(
                format!("analyze[{i}]"),
                SpanKind::SystemData {
                    resource: "ext".into(),
                    bytes: 1e12,
                },
                0.0,
                1000.0,
                32,
            ));
            t.push(TraceSpan::new(
                format!("analyze[{i}]"),
                SpanKind::Compute { flops: 3e15 },
                1000.0,
                1015.0,
                32,
            ));
        }
        t.push(TraceSpan::new(
            "merge",
            SpanKind::SystemData {
                resource: "fs".into(),
                bytes: 5e9,
            },
            1015.0,
            1020.0,
            1,
        ));
        t
    }

    #[test]
    fn makespan_and_task_times() {
        let t = sample();
        assert!((t.makespan() - 1020.0).abs() < 1e-9);
        assert!((t.task_time("analyze[0]").unwrap() - 1015.0).abs() < 1e-9);
        assert!((t.task_time("merge").unwrap() - 5.0).abs() < 1e-9);
        assert!(t.task_time("nope").is_none());
        assert_eq!(t.task_names().len(), 6);
    }

    #[test]
    fn breakdown_sums_by_category() {
        let b = sample().breakdown();
        assert!((b.get("io:ext") - 5000.0).abs() < 1e-9);
        assert!((b.get("compute") - 75.0).abs() < 1e-9);
        assert!((b.get("io:fs") - 5.0).abs() < 1e-9);
        assert_eq!(b.get("absent"), 0.0);
        assert!((b.total() - 5080.0).abs() < 1e-9);
    }

    #[test]
    fn volume_aggregation() {
        let t = sample();
        let sys = t.system_bytes();
        assert!((sys["ext"] - 5e12).abs() < 1e-3);
        assert!((sys["fs"] - 5e9).abs() < 1e-3);
        assert!((t.total_flops() - 1.5e16).abs() < 1.0);
        assert!(t.node_bytes().is_empty());
        assert_eq!(t.overhead_time(), 0.0);
    }

    #[test]
    fn io_summary_bandwidths() {
        let t = sample();
        let io = t.io_summary();
        let ext = io.iter().find(|s| s.resource == "ext").unwrap();
        assert_eq!(ext.transfers, 5);
        // 5 TB over 5000 busy-seconds -> 1 GB/s mean per-span bandwidth.
        assert!((ext.mean_bandwidth() - 1e9).abs() < 1e-3);
    }

    #[test]
    fn jsonl_round_trip() {
        let t = sample();
        let text = t.to_jsonl();
        let back = Trace::from_jsonl(&text).unwrap();
        assert_eq!(t, back);
        // Empty input parses to the default trace.
        assert_eq!(Trace::from_jsonl("").unwrap(), Trace::default());
        // Garbage fails.
        assert!(Trace::from_jsonl("{not json").is_err());
    }

    #[test]
    fn empty_trace_metrics() {
        let t = Trace::new("w", "m");
        assert_eq!(t.makespan(), 0.0);
        assert!(t.task_names().is_empty());
        assert_eq!(t.breakdown().total(), 0.0);
        assert!(t.io_summary().is_empty());
    }
}
