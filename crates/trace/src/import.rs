//! Importing external timing reports.
//!
//! The paper builds its dots from whatever each workflow reports: wall
//! clocks from papers, benchmark logs, sbatch accounting. This module
//! accepts a simple CSV so real reports can drive the model:
//!
//! ```csv
//! # task, kind, start_s, end_s, nodes, resource, amount
//! analyze0, system_data, 0,    1000, 32, ext, 1e12
//! analyze0, compute,     1000, 1015, 32, -,   3e15
//! analyze0, overhead:srun, 1015, 1020, 32, -, -
//! ```
//!
//! `kind` is `compute`, `node_data`, `system_data`, or
//! `overhead:<label>`. `resource` applies to the data kinds; `amount` is
//! FLOPs for `compute` and bytes for the data kinds (`-` where not
//! applicable). Lines starting with `#` and blank lines are skipped.

use crate::span::{SpanKind, TraceSpan};
use crate::trace::Trace;
use std::fmt;

/// CSV import error with line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ImportError {
    /// 1-based line number in the input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ImportError {}

fn err(line: usize, message: impl Into<String>) -> ImportError {
    ImportError {
        line,
        message: message.into(),
    }
}

fn parse_f64(field: &str, what: &str, line: usize) -> Result<f64, ImportError> {
    field.trim().parse::<f64>().map_err(|_| {
        err(
            line,
            format!("{what}: cannot parse number `{}`", field.trim()),
        )
    })
}

/// Parses the CSV timing format into a [`Trace`].
pub fn trace_from_csv(
    workflow: impl Into<String>,
    machine: impl Into<String>,
    csv: &str,
) -> Result<Trace, ImportError> {
    let mut trace = Trace::new(workflow, machine);
    for (idx, raw) in csv.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 7 {
            return Err(err(
                line_no,
                format!("expected 7 fields (task, kind, start_s, end_s, nodes, resource, amount), got {}", fields.len()),
            ));
        }
        let task = fields[0];
        if task.is_empty() {
            return Err(err(line_no, "empty task name"));
        }
        let start = parse_f64(fields[2], "start_s", line_no)?;
        let end = parse_f64(fields[3], "end_s", line_no)?;
        if !(start.is_finite() && end.is_finite() && end >= start && start >= 0.0) {
            return Err(err(line_no, format!("bad span times {start}..{end}")));
        }
        let nodes = fields[4]
            .parse::<u64>()
            .map_err(|_| err(line_no, format!("nodes: cannot parse `{}`", fields[4])))?;
        let resource = fields[5];
        let amount = fields[6];

        let kind = match fields[1] {
            "compute" => SpanKind::Compute {
                flops: parse_f64(amount, "amount (flops)", line_no)?,
            },
            "node_data" => {
                if resource == "-" || resource.is_empty() {
                    return Err(err(line_no, "node_data needs a resource"));
                }
                SpanKind::NodeData {
                    resource: resource.to_owned(),
                    bytes: parse_f64(amount, "amount (bytes)", line_no)?,
                }
            }
            "system_data" => {
                if resource == "-" || resource.is_empty() {
                    return Err(err(line_no, "system_data needs a resource"));
                }
                SpanKind::SystemData {
                    resource: resource.to_owned(),
                    bytes: parse_f64(amount, "amount (bytes)", line_no)?,
                }
            }
            other => match other.strip_prefix("overhead:") {
                Some(label) if !label.is_empty() => SpanKind::Overhead {
                    label: label.to_owned(),
                },
                _ => {
                    return Err(err(
                        line_no,
                        format!(
                            "unknown kind `{other}` (compute, node_data, system_data, \
                             overhead:<label>)"
                        ),
                    ))
                }
            },
        };
        trace.push(TraceSpan::new(task, kind, start, end, nodes.max(1)));
    }
    Ok(trace)
}

/// Serializes a trace back to the CSV format (inverse of
/// [`trace_from_csv`] up to whitespace).
pub fn trace_to_csv(trace: &Trace) -> String {
    let mut out = String::from("# task, kind, start_s, end_s, nodes, resource, amount\n");
    for s in &trace.spans {
        let (kind, resource, amount) = match &s.kind {
            SpanKind::Compute { flops } => {
                ("compute".to_owned(), "-".to_owned(), format!("{flops}"))
            }
            SpanKind::NodeData { resource, bytes } => {
                ("node_data".to_owned(), resource.clone(), format!("{bytes}"))
            }
            SpanKind::SystemData { resource, bytes } => (
                "system_data".to_owned(),
                resource.clone(),
                format!("{bytes}"),
            ),
            SpanKind::Overhead { label } => {
                (format!("overhead:{label}"), "-".to_owned(), "-".to_owned())
            }
        };
        out.push_str(&format!(
            "{}, {}, {}, {}, {}, {}, {}\n",
            s.task, kind, s.start, s.end, s.nodes, resource, amount
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# an LCLS-like report
analyze0, system_data, 0, 1000, 32, ext, 1e12
analyze0, compute, 1000, 1015, 32, -, 3e15
analyze0, node_data, 1015, 1016, 32, dram, 1.024e12

analyze0, overhead:srun, 1016, 1020, 32, -, -
";

    #[test]
    fn parses_the_sample() {
        let t = trace_from_csv("lcls", "cori", SAMPLE).unwrap();
        assert_eq!(t.spans.len(), 4);
        assert!((t.makespan() - 1020.0).abs() < 1e-12);
        assert!((t.system_bytes()["ext"] - 1e12).abs() < 1e-3);
        assert!((t.total_flops() - 3e15).abs() < 1.0);
        assert!((t.overhead_time() - 4.0).abs() < 1e-12);
        assert_eq!(t.workflow, "lcls");
        assert_eq!(t.machine, "cori");
    }

    #[test]
    fn round_trips_through_csv() {
        let t = trace_from_csv("w", "m", SAMPLE).unwrap();
        let csv = trace_to_csv(&t);
        let back = trace_from_csv("w", "m", &csv).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = trace_from_csv("w", "m", "task, compute, 0, 1, 1").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("7 fields"), "{e}");

        let e = trace_from_csv("w", "m", "\n\nt, warp, 0, 1, 1, -, -").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("unknown kind"), "{e}");

        let e = trace_from_csv("w", "m", "t, compute, 5, 1, 1, -, 1").unwrap_err();
        assert!(e.message.contains("bad span times"), "{e}");

        let e = trace_from_csv("w", "m", "t, compute, 0, 1, 1, -, abc").unwrap_err();
        assert!(e.message.contains("cannot parse number"), "{e}");

        let e = trace_from_csv("w", "m", "t, node_data, 0, 1, 1, -, 5").unwrap_err();
        assert!(e.message.contains("needs a resource"), "{e}");

        let e = trace_from_csv("w", "m", "t, overhead:, 0, 1, 1, -, -").unwrap_err();
        assert!(e.message.contains("unknown kind"), "{e}");

        let e = trace_from_csv("w", "m", ", compute, 0, 1, 1, -, 1").unwrap_err();
        assert!(e.message.contains("empty task"), "{e}");

        let e = trace_from_csv("w", "m", "t, compute, 0, 1, x, -, 1").unwrap_err();
        assert!(e.message.contains("nodes"), "{e}");
    }

    #[test]
    fn imported_trace_characterizes() {
        use crate::characterize::{characterize, Structure};
        let t = trace_from_csv("lcls", "cori", SAMPLE).unwrap();
        let wf = characterize(&t, &Structure::new(6.0, 5.0, 32)).unwrap();
        assert!((wf.system_volumes["ext"].get() - 1e12).abs() < 1e-3);
        assert!(wf.node_volumes.contains_key("dram"));
    }
}
