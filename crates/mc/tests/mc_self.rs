//! Self-tests for the model checker: known-buggy programs must fail
//! with a replayable seed, known-correct programs must pass, and the
//! pruning machinery must actually prune.
//!
//! Only meaningful under `RUSTFLAGS="--cfg wrm_mc"`; in a normal build
//! this file compiles to nothing.
#![cfg(wrm_mc)]

use std::sync::Arc;
use wrm_mc::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use wrm_mc::sync::{Condvar, Mutex};
use wrm_mc::{check, replay, thread, Config, FailureKind};

/// The classic lost wakeup: the signaler flips an atomic flag and
/// notifies WITHOUT holding the waiter's mutex. If the notify lands
/// between the waiter's predicate check and its `cv.wait`, the wakeup
/// is lost and the waiter blocks forever — which the checker must
/// surface as a deadlock with a deterministic replay seed.
fn lost_wakeup_program() {
    let flag = Arc::new(AtomicBool::new(false));
    let m = Arc::new(Mutex::new(()));
    let cv = Arc::new(Condvar::new());

    let waiter = {
        let (flag, m, cv) = (Arc::clone(&flag), Arc::clone(&m), Arc::clone(&cv));
        thread::spawn(move || {
            let mut guard = m.lock().unwrap();
            while !flag.load(Ordering::SeqCst) {
                guard = cv.wait(guard).unwrap();
            }
            drop(guard);
        })
    };
    let signaler = {
        let (flag, cv) = (Arc::clone(&flag), Arc::clone(&cv));
        thread::spawn(move || {
            flag.store(true, Ordering::SeqCst);
            cv.notify_one();
        })
    };
    waiter.join().unwrap();
    signaler.join().unwrap();
}

#[test]
fn finds_lost_wakeup_and_seed_replays() {
    let failure = check(Config::default(), lost_wakeup_program)
        .expect_err("the lost-wakeup program must fail the model check");
    assert_eq!(failure.kind, FailureKind::Deadlock, "{failure}");
    assert!(
        failure.seed.starts_with("mc1:"),
        "seed should be printable and versioned, got {:?}",
        failure.seed
    );

    // The seed must reproduce the same failure deterministically.
    let again = replay(&failure.seed, lost_wakeup_program)
        .expect_err("replaying the failing seed must reproduce the deadlock");
    assert_eq!(again.kind, FailureKind::Deadlock, "{again}");
    assert_eq!(again.seed, failure.seed);
}

#[test]
fn correct_signal_protocol_passes() {
    // Same shape, but the flag lives under the mutex and the signaler
    // holds the lock across set+notify: no interleaving loses the wakeup.
    let report = check(Config::default(), || {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());

        let waiter = {
            let (m, cv) = (Arc::clone(&m), Arc::clone(&cv));
            thread::spawn(move || {
                let mut guard = m.lock().unwrap();
                while !*guard {
                    guard = cv.wait(guard).unwrap();
                }
            })
        };
        {
            let mut guard = m.lock().unwrap();
            *guard = true;
            cv.notify_one();
        }
        waiter.join().unwrap();
    })
    .expect("the correct protocol must pass exhaustively");
    assert!(
        report.schedules >= 2,
        "expected real exploration: {report:?}"
    );
}

#[test]
fn finds_load_store_increment_race() {
    // Two threads doing a non-atomic read-modify-write; some
    // interleaving drops an increment and the final assert panics.
    let failure = check(Config::default(), || {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    let v = n.load(Ordering::SeqCst);
                    n.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::SeqCst), 2, "lost an increment");
    })
    .expect_err("the load/store race must be found");
    match &failure.kind {
        FailureKind::Panic(msg) => assert!(msg.contains("lost an increment"), "{failure}"),
        other => panic!("expected a Panic failure, got {other:?}\n{failure}"),
    }
}

#[test]
fn fetch_add_counter_passes() {
    let report = check(Config::default(), || {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    n.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::SeqCst), 2);
    })
    .expect("fetch_add is atomic; every interleaving must pass");
    assert!(
        report.schedules >= 2,
        "expected real exploration: {report:?}"
    );
}

#[test]
fn sleep_sets_prune_independent_threads() {
    // Two threads touching disjoint atomics commute everywhere, so
    // sleep sets must cut at least one of the reorderings.
    let report = check(Config::default(), || {
        let a = Arc::new(AtomicUsize::new(0));
        let b = Arc::new(AtomicUsize::new(0));
        let ha = {
            let a = Arc::clone(&a);
            thread::spawn(move || {
                a.fetch_add(1, Ordering::SeqCst);
            })
        };
        let hb = {
            let b = Arc::clone(&b);
            thread::spawn(move || {
                b.fetch_add(1, Ordering::SeqCst);
            })
        };
        ha.join().unwrap();
        hb.join().unwrap();
    })
    .expect("independent threads cannot fail");
    assert!(report.pruned >= 1, "sleep sets should prune: {report:?}");
}

#[test]
fn nonterminating_drain_hits_step_limit() {
    let cfg = Config {
        max_steps: 200,
        ..Config::default()
    };
    let failure = check(cfg, || {
        let stop = Arc::new(AtomicBool::new(false));
        let spinner = {
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                // Nobody ever sets `stop`: an unbounded drain loop.
                while !stop.load(Ordering::SeqCst) {
                    thread::yield_now();
                }
            })
        };
        spinner.join().unwrap();
    })
    .expect_err("the spin loop must exhaust the step limit");
    assert_eq!(failure.kind, FailureKind::StepLimit, "{failure}");
}

#[test]
fn bad_seed_is_a_replay_mismatch() {
    let failure = replay("not-a-seed", || {}).expect_err("garbage seeds must be rejected");
    assert!(
        matches!(failure.kind, FailureKind::ReplayMismatch(_)),
        "{failure}"
    );
}
