//! The cooperative scheduler and DFS interleaving explorer.
//!
//! Active only under `--cfg wrm_mc`, and only inside [`model`] /
//! [`check`] / [`replay`] runs. One OS thread exists per model thread,
//! but exactly one runs at a time: every shim operation parks at an
//! *operation point*, publishes the operation it wants to execute, and
//! waits for the controller (the caller's thread) to grant it. A
//! schedule is therefore a deterministic sequence of grants, and the
//! explorer enumerates schedules by depth-first search over grant
//! decisions with:
//!
//! * a **preemption bound** (switching away from a still-runnable
//!   thread costs one preemption; schedules over the bound are not
//!   explored);
//! * **sleep sets** (Godefroid): after a choice is fully explored at a
//!   decision node, partial-order-equivalent reorderings against
//!   independent operations are pruned.
//!
//! Failures — deadlock (every live thread blocked, which is how a lost
//! wakeup manifests), a panic never consumed by `join`, or a schedule
//! exceeding the step limit (non-terminating drain) — abort the run
//! and report a **seed**: the grant decision list, replayable with
//! [`replay`] or `WRM_MC_REPLAY=<seed>`.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering as AOrd};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

pub(crate) type Tid = usize;
pub(crate) type Oid = usize;

pub(crate) const NO_OBJ: usize = usize::MAX;

/// The operation a parked thread wants to execute next.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum OpKind {
    MutexLock,
    MutexUnlock,
    /// Release the mutex (`obj2`) and enqueue on the condvar (`obj`).
    CvWait,
    /// Blocked until notified; then reacquire the mutex (`obj2`).
    CvRewait,
    CvNotifyOne,
    CvNotifyAll,
    AtomicLoad,
    AtomicRmw,
    /// Create a child thread (`obj` assigned at grant time).
    Spawn,
    /// Wait for thread `obj` to finish.
    Join,
    Yield,
    /// Thread exit (obj = own tid).
    Finish,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct Op {
    pub kind: OpKind,
    pub obj: Oid,
    pub obj2: Oid,
}

impl Op {
    pub(crate) fn new(kind: OpKind, obj: Oid) -> Self {
        Self {
            kind,
            obj,
            obj2: NO_OBJ,
        }
    }

    pub(crate) fn with2(kind: OpKind, obj: Oid, obj2: Oid) -> Self {
        Self { kind, obj, obj2 }
    }
}

/// One object an op touches: `(space, id, is_read)`. Space 0 =
/// sync/atomic object ids, space 1 = thread ids (join/finish
/// lifecycle).
type Access = (u8, Oid, bool);

fn footprint(op: &Op) -> ([Option<Access>; 2], bool) {
    use OpKind::*;
    match op.kind {
        Yield | Spawn => ([None, None], true),
        MutexLock | MutexUnlock | CvNotifyOne | CvNotifyAll => {
            ([Some((0, op.obj, false)), None], false)
        }
        CvWait | CvRewait => ([Some((0, op.obj, false)), Some((0, op.obj2, false))], false),
        AtomicLoad => ([Some((0, op.obj, true)), None], false),
        AtomicRmw => ([Some((0, op.obj, false)), None], false),
        Join | Finish => ([Some((1, op.obj, false)), None], false),
    }
}

/// True when `a` and `b` commute in every state: they share no object,
/// or share objects only through reads.
pub(crate) fn independent(a: &Op, b: &Op) -> bool {
    let (fa, a_free) = footprint(a);
    let (fb, b_free) = footprint(b);
    if a_free || b_free {
        return true;
    }
    for oa in fa.iter().flatten() {
        for ob in fb.iter().flatten() {
            if oa.0 == ob.0 && oa.1 == ob.1 && !(oa.2 && ob.2) {
                return false;
            }
        }
    }
    true
}

struct ThreadSlot {
    pending: Option<Op>,
    finished: bool,
    /// Message of a user panic that ended this thread.
    panicked: Option<String>,
    /// True once a `join` delivered the panic to user code.
    panic_consumed: bool,
    /// Condvar wakeup token (set by notify, consumed by rewait).
    notified: bool,
}

#[derive(Default)]
struct MutexSlot {
    owner: Option<Tid>,
}

#[derive(Default)]
struct CvSlot {
    /// FIFO wait queue (matches the common platform behavior; spurious
    /// wakeups are not modeled — all substrate code loops on waits).
    waiters: Vec<Tid>,
}

/// Why a schedule was torn down early.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Abort {
    /// Sleep-set pruning: this schedule is equivalent to an explored one.
    Pruned,
    /// A failure was detected; unwind everything and report.
    Failed,
}

struct SchedState {
    threads: Vec<ThreadSlot>,
    mutexes: HashMap<Oid, MutexSlot>,
    cvs: HashMap<Oid, CvSlot>,
    next_oid: Oid,
    /// Thread currently granted but not yet woken/executing.
    granted: Option<Tid>,
    abort: Option<Abort>,
    steps: usize,
    trace: Vec<(Tid, Op)>,
}

/// Payload used to unwind model threads when a schedule is torn down.
/// Raised with `resume_unwind` so the panic hook stays silent.
pub(crate) struct SchedAbort;

pub(crate) struct Scheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
    /// Distinguishes schedules so object ids cached in shim types are
    /// never reused across runs.
    pub(crate) epoch: u64,
}

static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);
static MODELS_ACTIVE: AtomicUsize = AtomicUsize::new(0);

type Handle = (Arc<Scheduler>, Tid);

thread_local! {
    static CURRENT: std::cell::RefCell<Option<Handle>> =
        const { std::cell::RefCell::new(None) };
}

/// The scheduler handle of the calling thread, when it is a model
/// thread of a live run. The global counter makes the miss path cheap
/// (and TLS-free when no model is running anywhere in the process).
pub(crate) fn current() -> Option<Handle> {
    if MODELS_ACTIVE.load(AOrd::Relaxed) == 0 {
        return None;
    }
    CURRENT.with(|c| c.borrow().clone())
}

fn unpoison<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

pub(crate) fn payload_msg(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Unwind out of user code when the schedule is being torn down. During
/// an unwind (destructors running) it must not panic again, so it
/// returns and lets the destructor finish without scheduling.
fn abort_unwind() {
    if !std::thread::panicking() {
        std::panic::resume_unwind(Box::new(SchedAbort));
    }
}

impl Scheduler {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(SchedState {
                threads: Vec::new(),
                mutexes: HashMap::new(),
                cvs: HashMap::new(),
                next_oid: 0,
                granted: None,
                abort: None,
                steps: 0,
                trace: Vec::new(),
            }),
            cv: Condvar::new(),
            epoch: NEXT_EPOCH.fetch_add(1, AOrd::Relaxed),
        })
    }

    fn register_thread(st: &mut SchedState) -> Tid {
        st.threads.push(ThreadSlot {
            pending: None,
            finished: false,
            panicked: None,
            panic_consumed: false,
            notified: false,
        });
        st.threads.len() - 1
    }

    /// Allocates a model object id (mutex, condvar, or atomic — one id
    /// space so independence is a plain id comparison).
    pub(crate) fn new_object(&self) -> Oid {
        let mut st = unpoison(self.state.lock());
        let oid = st.next_oid;
        st.next_oid += 1;
        oid
    }

    fn ensure_mutex(st: &mut SchedState, oid: Oid) -> &mut MutexSlot {
        st.mutexes.entry(oid).or_default()
    }

    fn enabled(st: &SchedState, tid: Tid, op: &Op) -> bool {
        match op.kind {
            OpKind::MutexLock => st.mutexes.get(&op.obj).is_none_or(|m| m.owner.is_none()),
            OpKind::CvRewait => {
                st.threads[tid].notified
                    && st.mutexes.get(&op.obj2).is_none_or(|m| m.owner.is_none())
            }
            OpKind::Join => st.threads[op.obj].finished,
            _ => true,
        }
    }

    fn apply_effect(st: &mut SchedState, tid: Tid, op: &Op) -> usize {
        match op.kind {
            OpKind::MutexLock => {
                Self::ensure_mutex(st, op.obj).owner = Some(tid);
                0
            }
            OpKind::MutexUnlock => {
                Self::ensure_mutex(st, op.obj).owner = None;
                0
            }
            OpKind::CvWait => {
                Self::ensure_mutex(st, op.obj2).owner = None;
                st.cvs.entry(op.obj).or_default().waiters.push(tid);
                0
            }
            OpKind::CvRewait => {
                st.threads[tid].notified = false;
                Self::ensure_mutex(st, op.obj2).owner = Some(tid);
                0
            }
            OpKind::CvNotifyOne => {
                let cv = st.cvs.entry(op.obj).or_default();
                if !cv.waiters.is_empty() {
                    let w = cv.waiters.remove(0);
                    st.threads[w].notified = true;
                }
                0
            }
            OpKind::CvNotifyAll => {
                let waiters: Vec<Tid> = st
                    .cvs
                    .entry(op.obj)
                    .or_default()
                    .waiters
                    .drain(..)
                    .collect();
                for w in waiters {
                    st.threads[w].notified = true;
                }
                0
            }
            OpKind::Spawn => {
                let child = Self::register_thread(st);
                // The trace entry was pushed at grant time with the
                // child still unknown; fill it in for readability.
                if let Some(last) = st.trace.last_mut() {
                    if last.0 == tid && last.1.kind == OpKind::Spawn {
                        last.1.obj = child;
                    }
                }
                child
            }
            OpKind::Finish => {
                st.threads[tid].finished = true;
                0
            }
            OpKind::AtomicLoad | OpKind::AtomicRmw | OpKind::Join | OpKind::Yield => 0,
        }
    }

    /// Parks at an operation point and blocks until the controller
    /// grants the op, then applies its model effect. Returns the
    /// effect's result (the child tid for `Spawn`, else 0).
    ///
    /// When the schedule is being torn down this unwinds with
    /// [`SchedAbort`] — unless the thread is already unwinding (shim
    /// calls from destructors), in which case it returns immediately.
    pub(crate) fn op_point(self: &Arc<Self>, tid: Tid, op: Op) -> usize {
        let mut st = unpoison(self.state.lock());
        let mut result = 0;
        for round in 0..2 {
            let op = if round == 0 {
                op
            } else if op.kind == OpKind::CvWait {
                Op::with2(OpKind::CvRewait, op.obj, op.obj2)
            } else {
                break;
            };
            if st.abort.is_some() {
                st.threads[tid].pending = None;
                drop(st);
                abort_unwind();
                return 0;
            }
            st.threads[tid].pending = Some(op);
            self.cv.notify_all();
            loop {
                if st.abort.is_some() {
                    st.threads[tid].pending = None;
                    self.cv.notify_all();
                    drop(st);
                    abort_unwind();
                    return 0;
                }
                if st.granted == Some(tid) {
                    break;
                }
                st = unpoison(self.cv.wait(st));
            }
            st.granted = None;
            st.threads[tid].pending = None;
            result = Self::apply_effect(&mut st, tid, &op);
            self.cv.notify_all();
        }
        drop(st);
        result
    }

    /// Thread exit: parks at a `Finish` op. Never unwinds — on abort it
    /// just marks the thread finished so the controller can reap it.
    pub(crate) fn finish_point(self: &Arc<Self>, tid: Tid, panic_msg: Option<String>) {
        let mut st = unpoison(self.state.lock());
        st.threads[tid].panicked = panic_msg;
        if st.abort.is_some() {
            st.threads[tid].pending = None;
            st.threads[tid].finished = true;
            self.cv.notify_all();
            return;
        }
        st.threads[tid].pending = Some(Op::new(OpKind::Finish, tid));
        self.cv.notify_all();
        loop {
            if st.abort.is_some() || st.granted == Some(tid) {
                break;
            }
            st = unpoison(self.cv.wait(st));
        }
        if st.granted == Some(tid) {
            st.granted = None;
        }
        st.threads[tid].pending = None;
        st.threads[tid].finished = true;
        self.cv.notify_all();
    }

    /// Marks a join-delivered panic as consumed (not a model failure).
    pub(crate) fn consume_panic(&self, tid: Tid) {
        let mut st = unpoison(self.state.lock());
        st.threads[tid].panic_consumed = true;
    }

    /// Non-scheduled peek at a thread's finished flag (used by
    /// `JoinHandle::is_finished`; not a linearization point).
    pub(crate) fn is_finished(&self, tid: Tid) -> bool {
        unpoison(self.state.lock()).threads[tid].finished
    }

    /// Controller: blocks until every unfinished thread is parked (and
    /// no grant is outstanding). Returns the pending ops of unfinished
    /// threads, or `None` once every thread has finished.
    fn wait_quiescent(&self) -> Option<Vec<(Tid, Op)>> {
        let mut st = unpoison(self.state.lock());
        loop {
            if st.threads.iter().all(|t| t.finished) {
                return None;
            }
            let quiescent = st.granted.is_none()
                && st.threads.iter().all(|t| t.finished || t.pending.is_some());
            if quiescent {
                return Some(
                    st.threads
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| !t.finished)
                        .map(|(i, t)| (i, t.pending.expect("quiescent")))
                        .collect(),
                );
            }
            st = unpoison(self.cv.wait(st));
        }
    }

    fn grant(&self, tid: Tid, op: Op) {
        let mut st = unpoison(self.state.lock());
        st.granted = Some(tid);
        st.steps += 1;
        st.trace.push((tid, op));
        self.cv.notify_all();
    }

    fn begin_abort(&self, kind: Abort) {
        let mut st = unpoison(self.state.lock());
        if st.abort.is_none() {
            st.abort = Some(kind);
        }
        self.cv.notify_all();
    }

    /// Blocks until every model thread has marked itself finished after
    /// an abort (they all unwind at their next operation point).
    fn wait_all_finished(&self) {
        let mut st = unpoison(self.state.lock());
        while !st.threads.iter().all(|t| t.finished) {
            self.cv.notify_all();
            st = unpoison(self.cv.wait(st));
        }
    }

    /// First unconsumed user panic, if any.
    fn unconsumed_panic(&self) -> Option<(Tid, String)> {
        let st = unpoison(self.state.lock());
        st.threads.iter().enumerate().find_map(|(i, t)| {
            t.panicked
                .as_ref()
                .filter(|_| !t.panic_consumed)
                .map(|m| (i, m.clone()))
        })
    }

    fn snapshot_trace(&self) -> Vec<(Tid, Op)> {
        unpoison(self.state.lock()).trace.clone()
    }

    fn steps(&self) -> usize {
        unpoison(self.state.lock()).steps
    }

    fn blocked_summary(&self) -> Vec<(Tid, Op)> {
        let st = unpoison(self.state.lock());
        st.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.finished)
            .filter_map(|(i, t)| t.pending.map(|op| (i, op)))
            .collect()
    }
}

// ---------------------------------------------------------------------
// Exploration
// ---------------------------------------------------------------------

/// Exploration limits and bounds.
#[derive(Debug, Clone)]
pub struct Config {
    /// Max context switches away from a still-runnable thread per
    /// schedule (`None` = unbounded). Bugs overwhelmingly need few
    /// preemptions (CHESS); the default keeps suites exhaustive *and*
    /// fast.
    pub preemption_bound: Option<usize>,
    /// Hard cap on schedules explored; exceeding it is a model-size
    /// error, not a pass.
    pub max_schedules: usize,
    /// Per-schedule grant limit; exceeding it reports non-termination.
    pub max_steps: usize,
    /// Trace lines printed on failure.
    pub trace_tail: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            preemption_bound: Some(4),
            max_schedules: 200_000,
            max_steps: 5_000,
            trace_tail: 60,
        }
    }
}

/// Statistics of a successful exhaustive exploration.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Schedules run to completion.
    pub schedules: usize,
    /// Schedules cut short by sleep-set pruning.
    pub pruned: usize,
    /// Longest schedule, in grants.
    pub max_steps_seen: usize,
}

/// What the checker found, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct Failure {
    pub kind: FailureKind,
    /// Deterministic replay seed (`WRM_MC_REPLAY=<seed>` or [`replay`]).
    pub seed: String,
    /// Human-readable tail of the failing schedule.
    pub trace: String,
    /// Schedules explored before the failure surfaced.
    pub schedules: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// Every live thread is blocked (includes lost wakeups).
    Deadlock,
    /// A thread panicked and no `join` consumed the panic.
    Panic(String),
    /// The schedule exceeded `max_steps` grants.
    StepLimit,
    /// Exploration exceeded `max_schedules` without finishing.
    Budget,
    /// A replay seed diverged from the current code's behavior.
    ReplayMismatch(String),
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match &self.kind {
            FailureKind::Deadlock => "deadlock: every live thread is blocked".to_owned(),
            FailureKind::Panic(msg) => format!("unconsumed thread panic: {msg}"),
            FailureKind::StepLimit => {
                "schedule exceeded the step limit (non-termination?)".to_owned()
            }
            FailureKind::Budget => "exploration budget exceeded (model too large)".to_owned(),
            FailureKind::ReplayMismatch(msg) => format!("replay mismatch: {msg}"),
        };
        writeln!(
            f,
            "wrm-mc failure after {} schedule(s): {what}",
            self.schedules
        )?;
        writeln!(f, "replay seed: {}", self.seed)?;
        writeln!(
            f,
            "  (set WRM_MC_REPLAY={} to re-run exactly this schedule)",
            self.seed
        )?;
        write!(f, "{}", self.trace)
    }
}

/// One decision node on the DFS stack.
struct Node {
    /// Full enabled set at this point, continuation-first then by tid.
    candidates: Vec<(Tid, Op)>,
    /// Index (into `candidates`) currently being explored.
    chosen: usize,
    /// Sleep set on entry (threads whose exploration here is redundant).
    sleep_entry: Vec<(Tid, Op)>,
    /// Choices fully explored at this node.
    explored: Vec<(Tid, Op)>,
    /// Preemptions consumed on the path *before* this node's choice.
    preemptions_used: usize,
    last_running: Option<Tid>,
}

enum RunEnd {
    Complete,
    Pruned,
    Fail(FailureKind),
}

enum Mode<'a> {
    Explore(&'a mut Vec<Node>),
    Replay(&'a [Tid]),
}

fn order_candidates(mut enabled: Vec<(Tid, Op)>, last: Option<Tid>) -> Vec<(Tid, Op)> {
    enabled.sort_by_key(|(t, _)| *t);
    if let Some(l) = last {
        if let Some(pos) = enabled.iter().position(|(t, _)| *t == l) {
            let e = enabled.remove(pos);
            enabled.insert(0, e);
        }
    }
    enabled
}

fn preemption_cost(last: Option<Tid>, choice: Tid, enabled: &[(Tid, Op)]) -> usize {
    match last {
        Some(l) if l != choice && enabled.iter().any(|(t, _)| *t == l) => 1,
        _ => 0,
    }
}

fn asleep(sleep: &[(Tid, Op)], tid: Tid) -> bool {
    sleep.iter().any(|(t, _)| *t == tid)
}

fn format_trace(trace: &[(Tid, Op)], tail: usize, blocked: &[(Tid, Op)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let skip = trace.len().saturating_sub(tail);
    if skip > 0 {
        let _ = writeln!(out, "  ... {skip} earlier step(s) elided ...");
    }
    for (i, (tid, op)) in trace.iter().enumerate().skip(skip) {
        let _ = writeln!(out, "  step {i:>4}: thread {tid} {}", describe(op));
    }
    if !blocked.is_empty() {
        let _ = writeln!(out, "  blocked at the end:");
        for (tid, op) in blocked {
            let _ = writeln!(out, "    thread {tid} waiting on {}", describe(op));
        }
    }
    out
}

fn describe(op: &Op) -> String {
    use OpKind::*;
    match op.kind {
        MutexLock => format!("lock(m{})", op.obj),
        MutexUnlock => format!("unlock(m{})", op.obj),
        CvWait => format!("cv-wait(c{}, m{})", op.obj, op.obj2),
        CvRewait => format!("cv-wake(c{}, m{})", op.obj, op.obj2),
        CvNotifyOne => format!("notify-one(c{})", op.obj),
        CvNotifyAll => format!("notify-all(c{})", op.obj),
        AtomicLoad => format!("atomic-load(a{})", op.obj),
        AtomicRmw => format!("atomic-rmw(a{})", op.obj),
        Spawn => {
            if op.obj == NO_OBJ {
                "spawn".to_owned()
            } else {
                format!("spawn(thread {})", op.obj)
            }
        }
        Join => format!("join(thread {})", op.obj),
        Yield => "yield".to_owned(),
        Finish => "finish".to_owned(),
    }
}

/// Runs one schedule of `f` under the scheduler, steering by `mode`.
fn run_one(
    f: &Arc<dyn Fn() + Send + Sync>,
    cfg: &Config,
    mode: &mut Mode<'_>,
) -> (RunEnd, Arc<Scheduler>) {
    let sched = Scheduler::new();
    {
        let mut st = unpoison(sched.state.lock());
        let root = Scheduler::register_thread(&mut st);
        debug_assert_eq!(root, 0);
    }
    let root_os = {
        let f = Arc::clone(f);
        let s = Arc::clone(&sched);
        std::thread::Builder::new()
            .name("wrm-mc-root".into())
            .spawn(move || {
                CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&s), 0)));
                let r = catch_unwind(AssertUnwindSafe(|| f()));
                match &r {
                    Ok(()) => s.finish_point(0, None),
                    Err(p) if p.is::<SchedAbort>() => s.finish_point(0, None),
                    Err(p) => s.finish_point(0, Some(payload_msg(p.as_ref()))),
                }
                CURRENT.with(|c| *c.borrow_mut() = None);
            })
            .expect("spawn model root thread")
    };

    let mut running_sleep: Vec<(Tid, Op)> = Vec::new();
    let mut preemptions = 0usize;
    let mut last_running: Option<Tid> = None;
    let mut decision_idx = 0usize;
    let mut replay_pos = 0usize;

    let end = loop {
        let Some(pending) = sched.wait_quiescent() else {
            break match sched.unconsumed_panic() {
                Some((_, msg)) => RunEnd::Fail(FailureKind::Panic(msg)),
                None => RunEnd::Complete,
            };
        };
        let enabled: Vec<(Tid, Op)> = {
            let st = unpoison(sched.state.lock());
            pending
                .iter()
                .filter(|(t, op)| Scheduler::enabled(&st, *t, op))
                .copied()
                .collect()
        };
        if enabled.is_empty() {
            break match sched.unconsumed_panic() {
                Some((_, msg)) => RunEnd::Fail(FailureKind::Panic(msg)),
                None => RunEnd::Fail(FailureKind::Deadlock),
            };
        }
        if sched.steps() >= cfg.max_steps {
            break RunEnd::Fail(FailureKind::StepLimit);
        }
        let candidates = order_candidates(enabled, last_running);

        let choice: (Tid, Op) = match mode {
            Mode::Explore(path) => {
                if candidates.len() == 1 {
                    if asleep(&running_sleep, candidates[0].0) {
                        break RunEnd::Pruned;
                    }
                    let c = candidates[0];
                    running_sleep.retain(|(_, q)| independent(q, &c.1));
                    c
                } else if decision_idx < path.len() {
                    let node = &path[decision_idx];
                    if node.candidates != candidates {
                        // Determinism violation — surface loudly.
                        break RunEnd::Fail(FailureKind::ReplayMismatch(
                            "exploration prefix diverged; model closure is nondeterministic \
                             (shared state must be created inside the closure)"
                                .to_owned(),
                        ));
                    }
                    let c = node.candidates[node.chosen];
                    let mut base = node.sleep_entry.clone();
                    base.extend(node.explored.iter().copied());
                    base.retain(|(_, q)| independent(q, &c.1));
                    running_sleep = base;
                    decision_idx += 1;
                    c
                } else {
                    // New decision node: pick the first eligible choice.
                    let mut chosen = None;
                    for (j, (tid, _)) in candidates.iter().enumerate() {
                        if asleep(&running_sleep, *tid) {
                            continue;
                        }
                        let cost = preemption_cost(last_running, *tid, &candidates);
                        if let Some(bound) = cfg.preemption_bound {
                            if preemptions + cost > bound {
                                continue;
                            }
                        }
                        chosen = Some(j);
                        break;
                    }
                    let Some(j) = chosen else {
                        break RunEnd::Pruned;
                    };
                    let c = candidates[j];
                    path.push(Node {
                        candidates: candidates.clone(),
                        chosen: j,
                        sleep_entry: running_sleep.clone(),
                        explored: Vec::new(),
                        preemptions_used: preemptions,
                        last_running,
                    });
                    running_sleep.retain(|(_, q)| independent(q, &c.1));
                    decision_idx += 1;
                    c
                }
            }
            Mode::Replay(seed) => {
                if candidates.len() == 1 {
                    candidates[0]
                } else if replay_pos < seed.len() {
                    let want = seed[replay_pos];
                    replay_pos += 1;
                    match candidates.iter().find(|(t, _)| *t == want) {
                        Some(c) => *c,
                        None => {
                            break RunEnd::Fail(FailureKind::ReplayMismatch(format!(
                                "seed names thread {want} at step {}, but it is not enabled",
                                sched.steps()
                            )));
                        }
                    }
                } else {
                    break RunEnd::Fail(FailureKind::ReplayMismatch(
                        "seed exhausted before the schedule finished".to_owned(),
                    ));
                }
            }
        };

        preemptions += preemption_cost(last_running, choice.0, &candidates);
        sched.grant(choice.0, choice.1);
        last_running = Some(choice.0);
    };

    // Tear down: wake every parked thread so it unwinds, then reap.
    if !matches!(end, RunEnd::Complete) {
        sched.begin_abort(match end {
            RunEnd::Pruned => Abort::Pruned,
            _ => Abort::Failed,
        });
    }
    sched.wait_all_finished();
    let _ = root_os.join();
    (end, sched)
}

/// Advances the DFS stack to the next unexplored alternative. Returns
/// `false` when the space is exhausted.
fn advance(path: &mut Vec<Node>, cfg: &Config) -> bool {
    while let Some(node) = path.last_mut() {
        let cur = node.candidates[node.chosen];
        node.explored.push(cur);
        let mut j = node.chosen + 1;
        let mut advanced = false;
        while j < node.candidates.len() {
            let (tid, _) = node.candidates[j];
            let in_sleep = asleep(&node.sleep_entry, tid) || asleep(&node.explored, tid);
            let cost = preemption_cost(node.last_running, tid, &node.candidates);
            let over_bound = cfg
                .preemption_bound
                .is_some_and(|b| node.preemptions_used + cost > b);
            if !in_sleep && !over_bound {
                node.chosen = j;
                advanced = true;
                break;
            }
            j += 1;
        }
        if advanced {
            return true;
        }
        path.pop();
    }
    false
}

fn seed_of(path: &[Node]) -> String {
    let tids: Vec<String> = path
        .iter()
        .map(|n| n.candidates[n.chosen].0.to_string())
        .collect();
    format!("mc1:{}", tids.join("-"))
}

fn parse_seed(seed: &str) -> Result<Vec<Tid>, String> {
    let body = seed
        .strip_prefix("mc1:")
        .ok_or_else(|| format!("seed `{seed}` does not start with `mc1:`"))?;
    if body.is_empty() {
        return Ok(Vec::new());
    }
    body.split('-')
        .map(|s| {
            s.parse::<Tid>()
                .map_err(|e| format!("bad seed element `{s}`: {e}"))
        })
        .collect()
}

struct ActiveModel;
impl ActiveModel {
    fn enter() -> Self {
        MODELS_ACTIVE.fetch_add(1, AOrd::SeqCst);
        ActiveModel
    }
}
impl Drop for ActiveModel {
    fn drop(&mut self) {
        MODELS_ACTIVE.fetch_sub(1, AOrd::SeqCst);
    }
}

fn failure_from(
    end: RunEnd,
    sched: &Scheduler,
    seed: String,
    schedules: usize,
    cfg: &Config,
) -> Failure {
    let RunEnd::Fail(kind) = end else {
        unreachable!("failure_from called on a non-failing run")
    };
    let trace = format_trace(
        &sched.snapshot_trace(),
        cfg.trace_tail,
        &sched.blocked_summary(),
    );
    Failure {
        kind,
        seed,
        trace,
        schedules,
    }
}

/// Exhaustively explores `f`'s bounded interleaving space. Returns the
/// exploration report, or the first failure found.
pub fn check<F>(cfg: Config, f: F) -> Result<Report, Failure>
where
    F: Fn() + Send + Sync + 'static,
{
    let _active = ActiveModel::enter();
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut path: Vec<Node> = Vec::new();
    let mut schedules = 0usize;
    let mut pruned = 0usize;
    let mut max_steps_seen = 0usize;
    loop {
        schedules += 1;
        if schedules > cfg.max_schedules {
            return Err(Failure {
                kind: FailureKind::Budget,
                seed: seed_of(&path),
                trace: String::new(),
                schedules: schedules - 1,
            });
        }
        let mut mode = Mode::Explore(&mut path);
        let (end, sched) = run_one(&f, &cfg, &mut mode);
        max_steps_seen = max_steps_seen.max(sched.steps());
        match end {
            RunEnd::Complete => {}
            RunEnd::Pruned => pruned += 1,
            RunEnd::Fail(_) => {
                let seed = seed_of(&path);
                return Err(failure_from(end, &sched, seed, schedules, &cfg));
            }
        }
        if !advance(&mut path, &cfg) {
            return Ok(Report {
                schedules,
                pruned,
                max_steps_seen,
            });
        }
    }
}

/// Re-runs exactly the schedule a seed describes. `Ok(())` means the
/// schedule completed without failure (i.e. the bug did NOT reproduce).
pub fn replay<F>(seed: &str, f: F) -> Result<(), Failure>
where
    F: Fn() + Send + Sync + 'static,
{
    let decisions = parse_seed(seed).map_err(|msg| Failure {
        kind: FailureKind::ReplayMismatch(msg),
        seed: seed.to_owned(),
        trace: String::new(),
        schedules: 0,
    })?;
    let _active = ActiveModel::enter();
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let cfg = Config::default();
    let mut mode = Mode::Replay(&decisions);
    let (end, sched) = run_one(&f, &cfg, &mut mode);
    match end {
        RunEnd::Complete | RunEnd::Pruned => Ok(()),
        RunEnd::Fail(_) => Err(failure_from(end, &sched, seed.to_owned(), 1, &cfg)),
    }
}

/// Writes the failure report to `$WRM_MC_TRACE_DIR` (if set) so CI can
/// upload failing schedules as artifacts.
fn dump_trace(failure: &Failure) {
    static DUMP_SEQ: AtomicUsize = AtomicUsize::new(0);
    let Ok(dir) = std::env::var("WRM_MC_TRACE_DIR") else {
        return;
    };
    let n = DUMP_SEQ.fetch_add(1, AOrd::SeqCst);
    let path =
        std::path::Path::new(&dir).join(format!("mc-failure-{}-{n}.txt", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    let _ = std::fs::write(&path, format!("{failure}"));
    eprintln!("wrm-mc: wrote failing schedule to {}", path.display());
}

/// The standard entry point: explores `f` exhaustively with the default
/// config and panics (with seed and trace) on any failure. When
/// `WRM_MC_REPLAY` is set, runs only that schedule instead.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    if let Ok(seed) = std::env::var("WRM_MC_REPLAY") {
        match replay(&seed, f) {
            Ok(()) => eprintln!("wrm-mc: replayed {seed}: schedule completed without failure"),
            Err(failure) => {
                dump_trace(&failure);
                panic!("{failure}");
            }
        }
        return;
    }
    match check(Config::default(), f) {
        Ok(_) => {}
        Err(failure) => {
            dump_trace(&failure);
            panic!("{failure}");
        }
    }
}

// ---------------------------------------------------------------------
// Shim plumbing (used by shim_sync / shim_thread)
// ---------------------------------------------------------------------

pub(crate) fn set_current(sched: Arc<Scheduler>, tid: Tid) {
    CURRENT.with(|c| *c.borrow_mut() = Some((sched, tid)));
}

pub(crate) fn clear_current() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// A lazily-assigned per-schedule object id, packed as
/// `epoch << 32 | (oid + 1)` so ids cached across schedules are
/// detected and refreshed (objects should normally be created inside
/// the model closure, which makes assignment deterministic).
pub(crate) struct ObjId {
    cell: AtomicU64,
}

impl ObjId {
    pub(crate) const fn new() -> Self {
        Self {
            cell: AtomicU64::new(0),
        }
    }

    pub(crate) fn get(&self, sched: &Scheduler) -> Oid {
        let epoch = sched.epoch & 0xffff_ffff;
        loop {
            let packed = self.cell.load(AOrd::SeqCst);
            if packed >> 32 == epoch && packed & 0xffff_ffff != 0 {
                return ((packed & 0xffff_ffff) - 1) as Oid;
            }
            let oid = sched.new_object();
            let fresh = (epoch << 32) | (oid as u64 + 1);
            if self
                .cell
                .compare_exchange(packed, fresh, AOrd::SeqCst, AOrd::SeqCst)
                .is_ok()
            {
                return oid;
            }
        }
    }
}
