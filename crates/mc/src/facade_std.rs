//! Normal-build facade: nothing but `std` re-exports.
//!
//! This module is the entire facade when `wrm_mc` is not set, so the
//! shims are guaranteed zero-cost: the types *are* the `std` types and
//! no wrapper code exists to optimize away.

pub mod sync {
    pub use std::sync::{Condvar, LockResult, Mutex, MutexGuard, PoisonError};

    pub mod atomic {
        pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
    }
}

pub mod thread {
    pub use std::thread::{available_parallelism, sleep, yield_now, Builder, JoinHandle, Result};

    /// Identical to [`std::thread::spawn`]; present so facade users can
    /// write `wrm_mc::thread::spawn` in both configurations.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        std::thread::spawn(f)
    }
}
