//! `wrm_mc`-build thread shims: `spawn`/`Builder`/`JoinHandle` that
//! create scheduler-controlled model threads inside a model run and
//! plain OS threads outside one.

pub use std::thread::available_parallelism;

use crate::sched::{self, Op, OpKind, SchedAbort, Scheduler, Tid};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

pub type Result<T> = std::thread::Result<T>;

/// A handle to a spawned thread; the model variant parks at a `Join`
/// scheduling point before reaping the OS thread.
pub struct JoinHandle<T>(Inner<T>);

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        os: std::thread::JoinHandle<Result<T>>,
        sched: Arc<Scheduler>,
        tid: Tid,
    },
}

impl<T> JoinHandle<T> {
    pub fn join(self) -> Result<T> {
        match self.0 {
            Inner::Std(h) => h.join(),
            Inner::Model { os, sched, tid } => {
                let (s, me) =
                    sched::current().expect("model JoinHandle joined from outside the model");
                debug_assert!(Arc::ptr_eq(&s, &sched));
                // Parks until the target thread's Finish op is granted.
                s.op_point(me, Op::new(OpKind::Join, tid));
                match os.join() {
                    Ok(inner) => {
                        if inner.is_err() {
                            // A join-delivered panic is consumed, like
                            // std: it is the joiner's to handle, not a
                            // model failure.
                            sched.consume_panic(tid);
                        }
                        inner
                    }
                    Err(payload) => Err(payload),
                }
            }
        }
    }

    #[must_use]
    pub fn is_finished(&self) -> bool {
        match &self.0 {
            Inner::Std(h) => h.is_finished(),
            Inner::Model { sched, tid, .. } => sched.is_finished(*tid),
        }
    }
}

/// std-compatible named-thread builder.
#[derive(Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    #[must_use]
    pub fn name(mut self, name: String) -> Self {
        self.name = Some(name);
        self
    }

    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let mut builder = std::thread::Builder::new();
        if let Some(name) = self.name {
            builder = builder.name(name);
        }
        match sched::current() {
            None => builder.spawn(f).map(|h| JoinHandle(Inner::Std(h))),
            Some((sched, me)) => {
                // The spawn itself is a scheduling point; the child tid
                // is assigned when the op is granted, which keeps tid
                // assignment deterministic under replay.
                let child = sched.op_point(me, Op::new(OpKind::Spawn, sched::NO_OBJ));
                let s2 = Arc::clone(&sched);
                let os = builder.spawn(move || -> Result<T> {
                    sched::set_current(Arc::clone(&s2), child);
                    let s3 = Arc::clone(&s2);
                    let r = catch_unwind(AssertUnwindSafe(move || {
                        // Park before touching any user state: the parent
                        // is still running past its Spawn grant, and two
                        // threads in user code at once would make lazy
                        // object-id assignment racy (nondeterministic
                        // schedules). The startup op also lets the
                        // explorer schedule thread startup itself.
                        s3.op_point(child, Op::new(OpKind::Yield, sched::NO_OBJ));
                        f()
                    }));
                    match &r {
                        Ok(_) => s2.finish_point(child, None),
                        Err(p) if p.is::<SchedAbort>() => s2.finish_point(child, None),
                        Err(p) => s2.finish_point(child, Some(sched::payload_msg(p.as_ref()))),
                    }
                    sched::clear_current();
                    r
                })?;
                Ok(JoinHandle(Inner::Model {
                    os,
                    sched,
                    tid: child,
                }))
            }
        }
    }
}

/// Spawns a thread (a model thread inside a model run).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new().spawn(f).expect("failed to spawn thread")
}

/// A scheduling point inside a model; `std::thread::yield_now` outside.
pub fn yield_now() {
    match sched::current() {
        None => std::thread::yield_now(),
        Some((sched, tid)) => {
            sched.op_point(tid, Op::new(OpKind::Yield, sched::NO_OBJ));
        }
    }
}

/// Inside a model, sleeping is modeled as a plain yield (model time is
/// logical); outside, delegates to `std::thread::sleep`.
pub fn sleep(dur: std::time::Duration) {
    match sched::current() {
        None => std::thread::sleep(dur),
        Some((sched, tid)) => {
            sched.op_point(tid, Op::new(OpKind::Yield, sched::NO_OBJ));
        }
    }
}
