//! A tiny named fault-injection registry.
//!
//! Model-check mutation tests re-introduce a historical bug behind a
//! named flag (e.g. the PR-8 notify-without-lock lost wakeup) and
//! assert the checker finds it. The flags live here — in the facade
//! crate, outside the modeled state — so flipping one does not perturb
//! the explored interleaving space, and so the code under test does not
//! need its own `std::sync::atomic` import (which the facade lint
//! forbids).
//!
//! Flags are process-global: a mutation test that sets one must run in
//! its own test binary so it cannot race sibling tests (see
//! `vendor/crossbeam/tests/mc_mutation.rs`).

use std::sync::atomic::{AtomicU64, Ordering};

/// One word of fault bits; 64 named faults is plenty.
static FAULTS: AtomicU64 = AtomicU64::new(0);

/// Known fault names, in bit order.
const NAMES: &[&str] = &["crossbeam_notify_without_lock"];

fn bit(name: &str) -> u64 {
    let idx = NAMES
        .iter()
        .position(|n| *n == name)
        .unwrap_or_else(|| panic!("unknown fault name `{name}`; add it to wrm_mc::fault::NAMES"));
    1 << idx
}

/// Arms or disarms the named fault.
pub fn set(name: &str, armed: bool) {
    let b = bit(name);
    if armed {
        FAULTS.fetch_or(b, Ordering::SeqCst);
    } else {
        FAULTS.fetch_and(!b, Ordering::SeqCst);
    }
}

/// True when the named fault is armed.
#[must_use]
pub fn armed(name: &str) -> bool {
    FAULTS.load(Ordering::SeqCst) & bit(name) != 0
}

#[cfg(test)]
mod tests {
    #[test]
    fn arm_and_disarm() {
        assert!(!super::armed("crossbeam_notify_without_lock"));
        super::set("crossbeam_notify_without_lock", true);
        assert!(super::armed("crossbeam_notify_without_lock"));
        super::set("crossbeam_notify_without_lock", false);
        assert!(!super::armed("crossbeam_notify_without_lock"));
    }

    #[test]
    #[should_panic(expected = "unknown fault name")]
    fn unknown_name_panics() {
        let _ = super::armed("no_such_fault");
    }
}
