//! # wrm-mc — the concurrency facade and model checker
//!
//! Every concurrency-bearing module in the workspace (the vendored
//! crossbeam channel, the serve worker pool / LRU / drain logic, the
//! sweep column claimer) imports its primitives from here instead of
//! `std::sync` / `std::thread`:
//!
//! ```ignore
//! use wrm_mc::sync::{Mutex, Condvar};
//! use wrm_mc::sync::atomic::{AtomicUsize, Ordering};
//! use wrm_mc::thread;
//! ```
//!
//! In a **normal build** these are literal re-exports of the `std`
//! types — zero cost, zero behavior change, nothing but a `use` path.
//!
//! Under **`RUSTFLAGS="--cfg wrm_mc"`** the same paths resolve to
//! shims that, *inside a [`model`] run*, hand every visible operation
//! (lock, unlock, condvar wait/notify, atomic access, spawn, join,
//! yield) to a cooperative scheduler which:
//!
//! * runs exactly one thread at a time, so a schedule is a sequence of
//!   operation grants;
//! * **exhaustively explores** the bounded interleaving space by DFS
//!   over scheduling decisions, with a preemption bound and classic
//!   sleep-set pruning (Godefroid) to cut partial-order-equivalent
//!   schedules;
//! * detects **deadlocks** (every live thread blocked — this is how a
//!   lost wakeup manifests), **panicking threads** whose panic is not
//!   consumed by a `join`, and **non-termination** (per-schedule step
//!   limit);
//! * on failure prints a deterministic **replay seed**: re-running the
//!   model with `WRM_MC_REPLAY=<seed>` (or [`replay`]) re-executes
//!   exactly the failing schedule.
//!
//! Outside a model run the `wrm_mc` shims delegate to `std`, so the
//! whole workspace test suite still passes under `--cfg wrm_mc` — only
//! code inside `model(|| ...)` closures is scheduled.
//!
//! The checker explores sequentially-consistent interleavings: relaxed
//! memory-order bugs are out of scope (the nightly ThreadSanitizer CI
//! job covers that axis); lost wakeups, deadlocks, lost/duplicated
//! queue items, and counter drift are squarely in scope.
//!
//! See `docs/CONCURRENCY.md` for the facade rules and workflows.

pub mod fault;

#[cfg(not(wrm_mc))]
mod facade_std;
#[cfg(not(wrm_mc))]
pub use facade_std::{sync, thread};

#[cfg(wrm_mc)]
mod sched;
#[cfg(wrm_mc)]
pub mod shim_sync;
#[cfg(wrm_mc)]
pub mod shim_thread;
#[cfg(wrm_mc)]
pub use sched::{check, model, replay, Config, Failure, FailureKind, Report};
#[cfg(wrm_mc)]
pub use shim_sync as sync;
#[cfg(wrm_mc)]
pub use shim_thread as thread;
