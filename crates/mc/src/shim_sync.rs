//! `wrm_mc`-build sync shims: std-compatible `Mutex`, `Condvar`, and
//! atomics whose every operation is a scheduling point inside a model
//! run, and a plain delegate to `std` outside one.
//!
//! The shims keep the real `std` primitive inside them for data
//! storage; the model scheduler guarantees at most one thread runs at
//! a time, so inside a model the inner primitive is always
//! uncontended and the *model* lock/waiter state is what decides who
//! may proceed. Atomics execute with `SeqCst` inside a model (the
//! checker explores sequentially-consistent interleavings; the TSan CI
//! job covers weak-ordering bugs).
//!
//! Poisoning is not modeled: `lock()` inside a model always returns
//! `Ok`. All substrate code recovers from poison anyway
//! (`unwrap_or_else(PoisonError::into_inner)`), so behavior matches.

pub use std::sync::{LockResult, PoisonError};

use crate::sched::{self, ObjId, Op, OpKind, Scheduler, Tid};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Model-aware mutex with the `std::sync::Mutex` API subset the
/// workspace uses.
pub struct Mutex<T: ?Sized> {
    id: ObjId,
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex`]; releases the model lock (a scheduling point)
/// on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a Mutex<T>,
    /// `None` only transiently inside `Condvar::wait`.
    inner: Option<std::sync::MutexGuard<'a, T>>,
    /// `(scheduler, owner tid, mutex oid)` when model-acquired.
    model: Option<(Arc<Scheduler>, Tid, usize)>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            id: ObjId::new(),
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match sched::current() {
            None => {
                let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
                Ok(MutexGuard {
                    mutex: self,
                    inner: Some(inner),
                    model: None,
                })
            }
            Some((sched, tid)) => {
                let oid = self.id.get(&sched);
                sched.op_point(tid, Op::new(OpKind::MutexLock, oid));
                // The model granted exclusivity; the inner lock is free
                // except transiently during schedule teardown.
                let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
                Ok(MutexGuard {
                    mutex: self,
                    inner: Some(inner),
                    model: Some((sched, tid, oid)),
                })
            }
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first; the model gate (below) is what
        // other model threads actually wait on.
        self.inner = None;
        if let Some((sched, tid, oid)) = self.model.take() {
            sched.op_point(tid, Op::new(OpKind::MutexUnlock, oid));
        }
    }
}

/// Model-aware condition variable.
pub struct Condvar {
    id: ObjId,
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            id: ObjId::new(),
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match guard.model.clone() {
            None => {
                let inner = guard.inner.take().expect("guard holds the lock");
                let mutex = guard.mutex;
                // Forget the shim guard: the std guard now carries the
                // lock through the std wait.
                std::mem::forget(guard);
                let inner = self
                    .inner
                    .wait(inner)
                    .unwrap_or_else(PoisonError::into_inner);
                Ok(MutexGuard {
                    mutex,
                    inner: Some(inner),
                    model: None,
                })
            }
            Some((sched, tid, mutex_oid)) => {
                let cv_oid = self.id.get(&sched);
                // Drop the real lock, then atomically (in the model)
                // release + enqueue + block until notified + reacquire.
                guard.inner = None;
                sched.op_point(tid, Op::with2(OpKind::CvWait, cv_oid, mutex_oid));
                guard.inner = Some(
                    guard
                        .mutex
                        .inner
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner),
                );
                Ok(guard)
            }
        }
    }

    pub fn notify_one(&self) {
        if let Some((sched, tid)) = sched::current() {
            let oid = self.id.get(&sched);
            sched.op_point(tid, Op::new(OpKind::CvNotifyOne, oid));
        }
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        if let Some((sched, tid)) = sched::current() {
            let oid = self.id.get(&sched);
            sched.op_point(tid, Op::new(OpKind::CvNotifyAll, oid));
        }
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar")
    }
}

pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::sched::{self, Op, OpKind};

    macro_rules! model_atomic {
        ($name:ident, $std:ident, $ty:ty) => {
            /// Model-aware atomic; every access is a scheduling point
            /// inside a model run and a plain delegate outside one.
            pub struct $name {
                id: crate::sched::ObjId,
                inner: std::sync::atomic::$std,
            }

            impl $name {
                #[must_use]
                pub const fn new(value: $ty) -> Self {
                    Self {
                        id: crate::sched::ObjId::new(),
                        inner: std::sync::atomic::$std::new(value),
                    }
                }

                fn point(&self, kind: OpKind) -> bool {
                    match sched::current() {
                        None => false,
                        Some((sched, tid)) => {
                            let oid = self.id.get(&sched);
                            sched.op_point(tid, Op::new(kind, oid));
                            true
                        }
                    }
                }

                pub fn load(&self, order: Ordering) -> $ty {
                    if self.point(OpKind::AtomicLoad) {
                        self.inner.load(Ordering::SeqCst)
                    } else {
                        self.inner.load(order)
                    }
                }

                pub fn store(&self, value: $ty, order: Ordering) {
                    if self.point(OpKind::AtomicRmw) {
                        self.inner.store(value, Ordering::SeqCst);
                    } else {
                        self.inner.store(value, order);
                    }
                }

                pub fn swap(&self, value: $ty, order: Ordering) -> $ty {
                    if self.point(OpKind::AtomicRmw) {
                        self.inner.swap(value, Ordering::SeqCst)
                    } else {
                        self.inner.swap(value, order)
                    }
                }

                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    if self.point(OpKind::AtomicRmw) {
                        self.inner.compare_exchange(
                            current,
                            new,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                    } else {
                        self.inner.compare_exchange(current, new, success, failure)
                    }
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    self.inner.fmt(f)
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(Default::default())
                }
            }
        };
    }

    macro_rules! model_atomic_int {
        ($name:ident, $std:ident, $ty:ty) => {
            model_atomic!($name, $std, $ty);

            impl $name {
                pub fn fetch_add(&self, value: $ty, order: Ordering) -> $ty {
                    if self.point(OpKind::AtomicRmw) {
                        self.inner.fetch_add(value, Ordering::SeqCst)
                    } else {
                        self.inner.fetch_add(value, order)
                    }
                }

                pub fn fetch_sub(&self, value: $ty, order: Ordering) -> $ty {
                    if self.point(OpKind::AtomicRmw) {
                        self.inner.fetch_sub(value, Ordering::SeqCst)
                    } else {
                        self.inner.fetch_sub(value, order)
                    }
                }
            }
        };
    }

    model_atomic_int!(AtomicUsize, AtomicUsize, usize);
    model_atomic_int!(AtomicU64, AtomicU64, u64);
    model_atomic_int!(AtomicU32, AtomicU32, u32);
    model_atomic!(AtomicBool, AtomicBool, bool);
}
