//! Black-box tests of the `wrm` binary.

use std::path::PathBuf;
use std::process::Command;

fn wrm() -> Command {
    Command::new(env!("CARGO_BIN_EXE_wrm"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wrm_cli_{name}"));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    dir
}

const LCLS_WRM: &str = r#"
workflow lcls on cori-hsw {
  targets { makespan 10min  throughput 6 per 600s }
  task analyze[5] {
    nodes 32
    system_bytes ext 1TB cap 1GB/s
    node_bytes dram 1024GB
  }
  task merge { nodes 1 system_bytes bb 5GB after analyze }
}
"#;

#[test]
fn help_and_machines() {
    let out = wrm().output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("usage: wrm"));

    let out = wrm().arg("machines").output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Perlmutter GPU (1792 nodes)"));
    assert!(text.contains("Cori Haswell (2388 nodes)"));
    assert!(text.contains("5.6 TB/s"));
}

#[test]
fn analyze_simulate_figures_pipeline() {
    let dir = tmpdir("pipeline");
    let wf_path = dir.join("lcls.wrm");
    std::fs::write(&wf_path, LCLS_WRM).expect("write");

    // analyze --simulate --ascii --svg
    let svg_path = dir.join("lcls.svg");
    let out = wrm()
        .args([
            "analyze",
            wf_path.to_str().expect("utf8"),
            "--simulate",
            "--ascii",
            "--svg",
            svg_path.to_str().expect("utf8"),
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("simulated makespan: 10"), "{text}");
    assert!(text.contains("system-bound on `ext`"), "{text}");
    assert!(text.contains("Advice:"), "{text}");
    let svg = std::fs::read_to_string(&svg_path).expect("svg written");
    assert!(svg.contains("<svg"));

    // simulate --gantt --jsonl --contention
    let jsonl_path = dir.join("trace.jsonl");
    let out = wrm()
        .args([
            "simulate",
            wf_path.to_str().expect("utf8"),
            "--gantt",
            "--jsonl",
            jsonl_path.to_str().expect("utf8"),
            "--contention",
            "ext=0.2",
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("makespan 50"), "bad-day makespan: {text}");
    assert!(text.contains("time breakdown"), "{text}");
    assert!(text.contains("analyze[0]"), "{text}");
    let trace = std::fs::read_to_string(&jsonl_path).expect("jsonl written");
    assert!(trace.lines().count() > 10);

    // figures: one specific figure into the tmp dir.
    let figdir = dir.join("figs");
    let out = wrm()
        .args(["figures", "f4", "--out", figdir.to_str().expect("utf8")])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(figdir.join("fig4_lcls_skeleton.svg").exists());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn error_paths_are_reported() {
    // Unknown command.
    let out = wrm().arg("frobnicate").output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing file.
    let out = wrm()
        .args(["analyze", "/nonexistent.wrm"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));

    // Parse error with position.
    let dir = tmpdir("errors");
    let bad = dir.join("bad.wrm");
    std::fs::write(&bad, "workflow w { task a { nodes } }").expect("write");
    let out = wrm()
        .args([
            "analyze",
            bad.to_str().expect("utf8"),
            "--machine",
            "pm-gpu",
        ])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("expected a number"), "{err}");

    // Unknown machine.
    std::fs::write(&bad, "workflow w { task a { } }").expect("write");
    let out = wrm()
        .args([
            "analyze",
            bad.to_str().expect("utf8"),
            "--machine",
            "summit",
        ])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown machine"));

    // Unknown figure id.
    let out = wrm().args(["figures", "f99"]).output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown figure id"));

    // Bad flag and bad contention syntax.
    let out = wrm().args(["analyze", "--bogus"]).output().expect("runs");
    assert!(!out.status.success());
    let out = wrm()
        .args(["simulate", "x.wrm", "--contention", "ext"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("res=factor"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sweep_grid_json_and_csv() {
    let dir = tmpdir("sweep");
    let wf_path = dir.join("lcls.wrm");
    std::fs::write(&wf_path, LCLS_WRM).expect("write");

    // CSV to stdout: 2 factors x 2 policies = 4 rows + header, and the
    // halved external bandwidth doubles the makespan.
    let out = wrm()
        .args([
            "sweep",
            wf_path.to_str().expect("utf8"),
            "--resource",
            "ext",
            "--factors",
            "1.0,0.5",
            "--policies",
            "fifo,backfill",
            "--threads",
            "2",
            "--format",
            "csv",
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(text.lines().count(), 5, "{text}");
    assert!(
        text.starts_with("workflow,machine,resource,factor,node_limit,policy"),
        "{text}"
    );
    assert!(text.contains(",ext,1,,fifo,1000."), "{text}");
    assert!(text.contains(",ext,0.5,,backfill,2000."), "{text}");

    // JSON to a file, sweeping node limits.
    let json_path = dir.join("sweep.json");
    let out = wrm()
        .args([
            "sweep",
            wf_path.to_str().expect("utf8"),
            "--nodes",
            "64,161",
            "--format",
            "json",
            "--out",
            json_path.to_str().expect("utf8"),
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&json_path).expect("json written");
    assert!(json.trim_start().starts_with('['), "{json}");
    assert_eq!(json.matches("\"makespan_s\"").count(), 2, "{json}");
    assert!(json.contains("\"node_limit\": 64"), "{json}");
    assert!(json.contains("\"error\": null"), "{json}");

    // Builtin workflows resolve by name.
    let out = wrm()
        .args(["sweep", "bgw", "--format", "csv"])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("BerkeleyGW"),
        "builtin sweep output"
    );

    // Error paths: unknown workflow name, --factors without --resource.
    let out = wrm().args(["sweep", "nope"]).output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown workflow"));
    let out = wrm()
        .args(["sweep", wf_path.to_str().expect("utf8"), "--factors", "0.5"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--resource"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn custom_machine_file_end_to_end() {
    let dir = tmpdir("custom");
    let path = dir.join("custom.wrm");
    std::fs::write(
        &path,
        r#"
machine minicluster {
  nodes 16
  node compute 10TFLOPS
  system fs 100GB/s
}
workflow demo on minicluster {
  task work[4] { nodes 2 compute 10TFLOPS eff 0.5 system_bytes fs 100GB }
}
"#,
    )
    .expect("write");
    let out = wrm()
        .args(["simulate", path.to_str().expect("utf8")])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("demo on minicluster"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compare_profile_and_import() {
    let dir = tmpdir("compare");
    let wf_path = dir.join("lcls.wrm");
    std::fs::write(&wf_path, LCLS_WRM).expect("write");

    // compare: a table over all three machines plus required peaks.
    let out = wrm()
        .args(["compare", wf_path.to_str().expect("utf8")])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Perlmutter GPU"), "{text}");
    assert!(text.contains("Cori Haswell"), "{text}");
    assert!(text.contains("required peaks"), "{text}");

    // profile: concurrency summary and an SVG.
    let svg_path = dir.join("profile.svg");
    let out = wrm()
        .args([
            "profile",
            wf_path.to_str().expect("utf8"),
            "--svg",
            svg_path.to_str().expect("utf8"),
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("peak concurrency: 5 tasks"), "{text}");
    assert!(text.contains("serial fraction"), "{text}");
    assert!(svg_path.exists());

    // import: CSV timing report -> roofline report.
    let csv_path = dir.join("report.csv");
    std::fs::write(
        &csv_path,
        "analyze0, system_data, 0, 1000, 32, ext, 1e12\n\
         analyze0, node_data, 1000, 1012, 32, dram, 1.024e12\n",
    )
    .expect("write");
    let out = wrm()
        .args([
            "import",
            csv_path.to_str().expect("utf8"),
            "--machine",
            "cori-hsw",
            "--structure",
            "6,5,32",
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("system-bound on `ext`"), "{text}");

    // import without --machine fails clearly.
    let out = wrm()
        .args(["import", csv_path.to_str().expect("utf8")])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--machine"));

    // bad --structure is reported.
    let out = wrm()
        .args([
            "import",
            csv_path.to_str().expect("utf8"),
            "--machine",
            "cori-hsw",
            "--structure",
            "6,5",
        ])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("total,parallel"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn html_report_contains_every_section() {
    let dir = tmpdir("html");
    let wf_path = dir.join("lcls.wrm");
    std::fs::write(&wf_path, LCLS_WRM).expect("write");
    let html_path = dir.join("report.html");
    let out = wrm()
        .args([
            "analyze",
            wf_path.to_str().expect("utf8"),
            "--simulate",
            "--html",
            html_path.to_str().expect("utf8"),
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let html = std::fs::read_to_string(&html_path).expect("html written");
    assert!(html.starts_with("<!DOCTYPE html>"));
    for section in [
        "Analysis",
        "Workflow Roofline",
        "Skeleton",
        "Gantt chart",
        "Time breakdown",
        "Parallelism profile",
    ] {
        assert!(html.contains(section), "missing section {section}");
    }
    // Inline SVGs, no external assets.
    assert!(html.matches("<svg").count() >= 5);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sweep_output_order_is_deterministic() {
    let dir = tmpdir("sweep_order");
    let wf_path = dir.join("lcls.wrm");
    std::fs::write(&wf_path, LCLS_WRM).expect("write");
    let wf = wf_path.to_str().expect("utf8");

    // The same grid under different thread counts, engines, and axis
    // input orders must produce byte-identical output: rows are sorted
    // by grid coordinates before serializing.
    let run = |factors: &str, extra: &[&str]| -> String {
        let mut args = vec![
            "sweep",
            wf,
            "--resource",
            "ext",
            "--factors",
            factors,
            "--nodes",
            "161,64",
            "--policies",
            "backfill,fifo",
            "--format",
            "csv",
        ];
        args.extend_from_slice(extra);
        let out = wrm().args(&args).output().expect("runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).expect("utf8 output")
    };

    let golden = run("0.25,0.5,1.0", &["--threads", "1"]);
    // 3 factors x 2 node limits x 2 policies + header.
    assert_eq!(golden.lines().count(), 13, "{golden}");
    // Coordinates ascend: factor major, node limit next, fifo first.
    let second_field = |line: &str, n: usize| line.split(',').nth(n).map(str::to_owned);
    let rows: Vec<&str> = golden.lines().skip(1).collect();
    assert_eq!(second_field(rows[0], 3).as_deref(), Some("0.25"));
    assert_eq!(second_field(rows[0], 4).as_deref(), Some("64"));
    assert_eq!(second_field(rows[0], 5).as_deref(), Some("fifo"));
    assert_eq!(second_field(rows[1], 5).as_deref(), Some("backfill"));
    assert_eq!(second_field(rows[2], 4).as_deref(), Some("161"));
    assert_eq!(second_field(rows[4], 3).as_deref(), Some("0.5"));
    assert_eq!(second_field(rows[12 - 4], 3).as_deref(), Some("1"));

    for (factors, extra) in [
        ("0.25,0.5,1.0", &["--threads", "4"][..]),
        ("1.0,0.25,0.5", &["--threads", "2"][..]),
        ("0.25,0.5,1.0", &["--threads", "1", "--no-incremental"][..]),
        ("1.0,0.25,0.5", &["--threads", "4", "--no-incremental"][..]),
        ("0.25,0.5,1.0", &["--incremental"][..]),
    ] {
        assert_eq!(run(factors, extra), golden, "variant {factors} {extra:?}");
    }

    std::fs::remove_dir_all(&dir).ok();
}
