//! End-to-end determinism: the same analyses through `wrm <cmd>` and
//! through a real `wrm serve` process must produce byte-identical
//! output — cold cache, warm cache, and under concurrent clients.

use std::io::{BufRead, BufReader, Read};
use std::process::{Child, ChildStderr, Command, Stdio};
use wrm_serve::client::{self, Client};

const LCLS_WRM: &str = r#"
workflow lcls on cori-hsw {
  targets { makespan 10min  throughput 6 per 600s }
  task analyze[5] {
    nodes 32
    system_bytes ext 1TB cap 1GB/s
    node_bytes dram 1024GB
  }
  task merge { nodes 1 system_bytes bb 5GB after analyze }
}
"#;

const MC_WRM: &str = r#"
workflow lcls-mc on cori-hsw {
  task analyze[5] {
    nodes 32
    system_bytes ext uniform(0.8TB, 1.2TB) cap 1GB/s
    node_bytes dram lognormal(1024GB, 0.25)
    overhead setup triangular(3s, 5s, 10s)
  }
  task merge { nodes 1 system_bytes bb empirical(4GB 1, 5GB 2, 8GB 1) after analyze }
}
"#;

fn wrm() -> Command {
    Command::new(env!("CARGO_BIN_EXE_wrm"))
}

/// Runs a CLI command and returns its stdout bytes (asserting success).
fn cli_stdout(args: &[&str]) -> Vec<u8> {
    let out = wrm().args(args).output().expect("wrm runs");
    assert!(
        out.status.success(),
        "wrm {args:?}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

/// A `wrm serve` child process bound to a free port.
struct Server {
    child: Child,
    stderr: BufReader<ChildStderr>,
    addr: String,
}

impl Server {
    fn start() -> Self {
        let mut child = wrm()
            .args(["serve", "--addr", "127.0.0.1:0", "--threads", "2"])
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("serve spawns");
        let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
        let mut line = String::new();
        stderr.read_line(&mut line).expect("listening line");
        let addr = line
            .split("listening on ")
            .nth(1)
            .and_then(|rest| rest.split(' ').next())
            .unwrap_or_else(|| panic!("unexpected startup line {line:?}"))
            .to_owned();
        Server {
            child,
            stderr,
            addr,
        }
    }

    /// Shuts down via the admin endpoint and returns the drain line.
    fn stop(mut self) -> String {
        let r =
            client::request(&self.addr, "POST", "/admin/shutdown", None).expect("shutdown request");
        assert_eq!(r.status, 200);
        let status = self.child.wait().expect("serve exits");
        assert!(status.success(), "serve exit status {status:?}");
        let mut rest = String::new();
        self.stderr.read_to_string(&mut rest).expect("drain line");
        rest
    }
}

/// JSON body with the `.wrm` source under `workflow` plus extra
/// pre-encoded fields.
fn source_body(source: &str, extra: &str) -> String {
    let escaped = serde_json::Value::String(source.to_owned()).to_string();
    format!("{{\"workflow\":{escaped}{extra}}}")
}

#[test]
fn server_responses_match_cli_output_byte_for_byte() {
    let dir = std::env::temp_dir().join("wrm_serve_e2e");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let wf_path = dir.join("lcls.wrm");
    std::fs::write(&wf_path, LCLS_WRM).expect("write workflow");
    let wf = wf_path.to_str().expect("utf8");

    let sweep_cli = cli_stdout(&[
        "sweep",
        wf,
        "--resource",
        "ext",
        "--factors",
        "1.0,0.5",
        "--policies",
        "backfill,fifo",
        "--format",
        "csv",
        "--quiet",
    ]);
    let sweep_jsonl_cli = cli_stdout(&[
        "sweep", wf, "--nodes", "64,161", "--format", "jsonl", "--quiet",
    ]);
    let simulate_cli = cli_stdout(&["simulate", wf]);
    let summary_cli = cli_stdout(&["simulate", wf, "--summary"]);
    let wf_mc_path = dir.join("lcls_mc.wrm");
    std::fs::write(&wf_mc_path, MC_WRM).expect("write mc workflow");
    let wf_mc = wf_mc_path.to_str().expect("utf8");
    // Thread count must never change the bytes: ask the CLI for 4
    // workers and the server for its single-slot default.
    let mc_cli = cli_stdout(&[
        "simulate",
        wf_mc,
        "--reps",
        "64",
        "--seed",
        "7",
        "--percentiles",
        "--threads",
        "4",
    ]);
    let certify_cli = cli_stdout(&["certify", wf]);
    let lint_cli = cli_stdout(&["lint", wf, "--format", "json"]);

    let server = Server::start();
    let addr = server.addr.clone();
    let sweep_body = source_body(
        LCLS_WRM,
        ",\"resource\":\"ext\",\"factors\":[1.0,0.5],\
         \"policies\":[\"backfill\",\"fifo\"],\"format\":\"csv\"",
    );

    // Cold then warm cache on one keep-alive connection.
    let mut conn = Client::connect(&addr).expect("connect");
    let cold = conn
        .request("POST", "/v1/sweep", Some(&sweep_body))
        .expect("cold sweep");
    assert_eq!(cold.status, 200, "{}", cold.text());
    assert_eq!(cold.body, sweep_cli, "cold-cache sweep != CLI bytes");
    let warm = conn
        .request("POST", "/v1/sweep", Some(&sweep_body))
        .expect("warm sweep");
    assert_eq!(warm.body, sweep_cli, "warm-cache sweep != CLI bytes");

    // Four concurrent clients all get the CLI bytes.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let addr = &addr;
            let body = &sweep_body;
            let want = &sweep_cli;
            scope.spawn(move || {
                let r = client::request(addr, "POST", "/v1/sweep", Some(body))
                    .expect("concurrent sweep");
                assert_eq!(&r.body, want, "concurrent sweep != CLI bytes");
            });
        }
    });

    // The remaining endpoints, over the still-open connection.
    let r = conn
        .request(
            "POST",
            "/v1/sweep",
            Some(&source_body(
                LCLS_WRM,
                ",\"nodes\":[64,161],\"format\":\"jsonl\"",
            )),
        )
        .expect("jsonl sweep");
    assert_eq!(r.body, sweep_jsonl_cli, "jsonl sweep != CLI bytes");

    let r = conn
        .request("POST", "/v1/simulate", Some(&source_body(LCLS_WRM, "")))
        .expect("simulate");
    assert_eq!(r.body, simulate_cli, "simulate != CLI bytes");

    let r = conn
        .request(
            "POST",
            "/v1/simulate",
            Some(&source_body(LCLS_WRM, ",\"summary\":true")),
        )
        .expect("summary");
    assert_eq!(r.body, summary_cli, "summary != CLI bytes");

    let r = conn
        .request("POST", "/v1/certify", Some(&source_body(LCLS_WRM, "")))
        .expect("certify");
    assert_eq!(r.body, certify_cli, "certify != CLI bytes");

    let mc_body = source_body(MC_WRM, ",\"reps\":64,\"seed\":7");
    let cold = conn
        .request("POST", "/v1/mc", Some(&mc_body))
        .expect("cold mc");
    assert_eq!(cold.status, 200, "{}", cold.text());
    assert_eq!(cold.body, mc_cli, "mc != CLI bytes");
    let warm = conn
        .request("POST", "/v1/mc", Some(&mc_body))
        .expect("warm mc");
    assert_eq!(warm.body, mc_cli, "warm-cache mc != CLI bytes");

    // A distribution-free workflow degenerates to one replication that
    // reproduces the deterministic run.
    let r = conn
        .request(
            "POST",
            "/v1/mc",
            Some(&source_body(LCLS_WRM, ",\"reps\":16")),
        )
        .expect("degenerate mc");
    assert_eq!(r.status, 200, "{}", r.text());
    assert!(r.text().contains("point-mass"), "{}", r.text());

    let lint_body = source_body(LCLS_WRM, &format!(",\"path\":{wf:?},\"format\":\"json\""));
    let r = conn
        .request("POST", "/v1/lint", Some(&lint_body))
        .expect("lint");
    assert_eq!(r.body, lint_cli, "lint != CLI bytes");

    let drain = server.stop();
    assert!(drain.contains("drained"), "no drain report in {drain:?}");

    std::fs::remove_dir_all(&dir).ok();
}
