//! `wrm sweep` — parameter sweeps over a workflow scenario.
//!
//! Builds the cartesian grid of contention factor x node limit x
//! scheduler policy and simulates every cell, printing one row per cell
//! as JSON, JSON lines, or CSV. By default the grid runs on the
//! incremental sweep engine (`wrm_sim::sweep_grid`) — one shared base
//! index, an analytic fast path for uncontended cells, and
//! checkpoint/replay along the factor axis — which is bit-identical to
//! per-point simulation; `--no-incremental` forces the per-point runner
//! (`wrm_sim::run_all`). Scenario errors land in the row's `error`
//! column instead of aborting the whole sweep.
//!
//! Grid construction and row formatting live in `wrm_serve::render` —
//! the same functions the server streams `POST /v1/sweep` responses
//! with — so output rows are always in canonical coordinate order and
//! the bytes are identical regardless of `--threads`, `--incremental`,
//! input axis order, or which front end produced them.

use wrm_serve::render;
use wrm_sim::{run_all, Scenario};

use crate::Flags;

/// Resolves the positional argument to a base scenario: a `.wrm` file
/// (compiled like `wrm simulate`) or one of the builtin paper
/// workflows.
fn base_scenario(flags: &Flags) -> Result<Scenario, String> {
    let target = flags
        .file
        .as_ref()
        .ok_or_else(|| "missing workflow argument (a .wrm file or a builtin name)".to_owned())?;
    if let Some(scenario) = wrm_serve::resolve::builtin_scenario(target) {
        return Ok(scenario);
    }
    if target.ends_with(".wrm") {
        let source =
            std::fs::read_to_string(target).map_err(|e| format!("cannot read {target}: {e}"))?;
        let resolved = wrm_serve::resolve::from_source(target, &source, flags.machine.as_deref())?;
        Ok(resolved.scenario)
    } else {
        Err(format!(
            "unknown workflow `{target}` (expected a .wrm file or one of: \
             lcls, bgw, cosmoflow, gptune-rci, gptune-spawn)"
        ))
    }
}

pub fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let flags = crate::parse_flags(args)?;
    let base = base_scenario(&flags)?;
    let grid = render::build_grid(
        &base,
        flags.resource.clone(),
        &flags.factors,
        &flags.nodes,
        &flags.policies,
    )?;
    let cells = render::grid_cells(&grid);

    let (results, stats) = if flags.incremental {
        let outcome = wrm_sim::sweep_grid(&base, &grid, flags.threads);
        (outcome.results, Some(outcome.stats))
    } else {
        let scenarios: Vec<Scenario> = (0..grid.factors.len())
            .flat_map(|fi| {
                let base = &base;
                let grid = &grid;
                (0..grid.node_limits.len()).flat_map(move |ni| {
                    (0..grid.policies.len()).map(move |pi| {
                        base.clone()
                            .with_options(grid.point_options(&base.options, fi, ni, pi))
                    })
                })
            })
            .collect();
        (run_all(&scenarios, flags.threads), None)
    };

    let workflow = base.workflow.name.as_str();
    let machine = base.machine.name.as_str();
    let resource = grid.resource.clone().unwrap_or_default();
    let output = match flags.format.as_str() {
        "json" => {
            let rows: Vec<serde_json::Value> = cells
                .iter()
                .zip(&results)
                .map(|(cell, result)| {
                    render::sweep_row_value(workflow, machine, &resource, cell, result)
                })
                .collect();
            render::sweep_json(rows)?
        }
        "jsonl" => {
            let mut text = String::new();
            for (cell, result) in cells.iter().zip(&results) {
                let row = render::sweep_row_value(workflow, machine, &resource, cell, result);
                text.push_str(&render::sweep_row_jsonl(&row)?);
            }
            text
        }
        // "text" is parse_flags' untouched default: sweep output is
        // tabular, so plain invocations get CSV.
        "csv" | "text" => {
            let mut text = String::from(render::SWEEP_CSV_HEADER);
            for (cell, result) in cells.iter().zip(&results) {
                text.push_str(&render::sweep_row_csv(
                    workflow, machine, &resource, cell, result,
                ));
            }
            text
        }
        other => {
            return Err(format!(
                "unknown --format `{other}` (expected json, jsonl, or csv)"
            ))
        }
    };

    match &flags.out {
        Some(path) => {
            std::fs::write(path, &output).map_err(|e| format!("cannot write {path}: {e}"))?;
        }
        None => print!("{output}"),
    }

    // Path stats go to stderr so scripted callers can pipe stdout; the
    // worker count reported is the resolved one (0 = auto, explicit
    // values capped at the host core count and the job count).
    if !flags.quiet {
        let jobs = if flags.incremental {
            // The incremental engine parallelizes over (node, policy)
            // columns, replaying the factor axis within each.
            grid.node_limits.len() * grid.policies.len()
        } else {
            cells.len()
        };
        let workers = wrm_sim::effective_workers(flags.threads, jobs);
        let engine = match &stats {
            Some(s) => format!(
                "incremental: {} analytic, {} replayed, {} cold, {} reused, {} error(s)",
                s.fastpath, s.replayed, s.cold, s.reused, s.errors
            ),
            None => "per-point".to_owned(),
        };
        match &flags.out {
            Some(path) => eprintln!(
                "wrote {} sweep row(s) to {path} ({workers} thread(s); {engine})",
                cells.len()
            ),
            None => eprintln!(
                "swept {} row(s) ({workers} thread(s); {engine})",
                cells.len()
            ),
        }
    }
    Ok(())
}
