//! `wrm sweep` — parameter sweeps over a workflow scenario.
//!
//! Builds the cartesian grid of contention factor x node limit x
//! scheduler policy and simulates every cell, printing one row per cell
//! as JSON or CSV. By default the grid runs on the incremental sweep
//! engine (`wrm_sim::sweep_grid`) — one shared base index, an analytic
//! fast path for uncontended cells, and checkpoint/replay along the
//! factor axis — which is bit-identical to per-point simulation;
//! `--no-incremental` forces the per-point runner (`wrm_sim::run_all`).
//! Scenario errors land in the row's `error` column instead of aborting
//! the whole sweep.
//!
//! Output rows are always sorted by grid coordinates (factor, then node
//! limit with the full pool first, then policy with `fifo` first), so
//! the bytes are identical regardless of `--threads`, `--incremental`,
//! or the order axis values were passed in.

use wrm_core::machines;
use wrm_sim::{run_all, Scenario, SchedulerPolicy, SweepGrid};
use wrm_workflows::{Bgw, CosmoFlow, Day, GpTune, Lcls, Mode};

use crate::{compile_checked, Flags};

/// One cell of the sweep grid.
struct Cell {
    factor: f64,
    node_limit: Option<u64>,
    policy: SchedulerPolicy,
}

fn policy_name(p: SchedulerPolicy) -> &'static str {
    match p {
        SchedulerPolicy::Fifo => "fifo",
        SchedulerPolicy::Backfill => "backfill",
    }
}

/// Resolves the positional argument to a base scenario: a `.wrm` file
/// (compiled like `wrm simulate`) or one of the builtin paper
/// workflows.
fn base_scenario(flags: &Flags) -> Result<Scenario, String> {
    let target = flags
        .file
        .as_ref()
        .ok_or_else(|| "missing workflow argument (a .wrm file or a builtin name)".to_owned())?;
    match target.as_str() {
        "lcls" => Ok(Lcls::year_2020_on_cori().scenario(machines::cori_haswell(), Day::Good)),
        "bgw" => Ok(Bgw::si998_64().scenario()),
        "cosmoflow" => Ok(CosmoFlow::default().scenario()),
        "gptune-rci" => Ok(GpTune::default().scenario(Mode::Rci)),
        "gptune-spawn" => Ok(GpTune::default().scenario(Mode::Spawn)),
        path if path.ends_with(".wrm") => {
            let source =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let compiled = compile_checked(path, &source)?;
            let machine = match &flags.machine {
                Some(name) => {
                    machines::by_name(name).ok_or_else(|| format!("unknown machine `{name}`"))?
                }
                None => compiled.machine.clone().ok_or_else(|| {
                    "no machine: add `on <machine>` to the file or pass --machine".to_owned()
                })?,
            };
            Ok(Scenario::new(machine, compiled.spec))
        }
        other => Err(format!(
            "unknown workflow `{other}` (expected a .wrm file or one of: \
             lcls, bgw, cosmoflow, gptune-rci, gptune-spawn)"
        )),
    }
}

pub fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let flags = crate::parse_flags(args)?;
    let base = base_scenario(&flags)?;

    if !flags.factors.is_empty() && flags.resource.is_none() {
        return Err("--factors needs --resource <shared resource id>".to_owned());
    }
    let mut factors = if flags.factors.is_empty() {
        vec![1.0]
    } else {
        flags.factors.clone()
    };
    let mut node_limits: Vec<Option<u64>> = if flags.nodes.is_empty() {
        vec![base.options.node_limit]
    } else {
        flags.nodes.iter().map(|&n| Some(n)).collect()
    };
    let mut policies = if flags.policies.is_empty() {
        vec![base.options.scheduler]
    } else {
        flags.policies.clone()
    };
    // Canonical coordinate order: output bytes must not depend on the
    // order axis values were given, the thread count, or the engine.
    factors.sort_unstable_by(f64::total_cmp);
    node_limits.sort_unstable();
    policies.sort_unstable_by_key(|p| match p {
        SchedulerPolicy::Fifo => 0,
        SchedulerPolicy::Backfill => 1,
    });
    if let Some(res) = &flags.resource {
        if base.machine.system_resource(res).is_none() {
            return Err(format!(
                "machine `{}` has no shared resource `{res}`",
                base.machine.name
            ));
        }
    }

    let grid = SweepGrid {
        resource: flags.resource.clone(),
        factors,
        node_limits,
        policies,
    };
    // Cell metadata in `SweepGrid::index_of` order — the same nested
    // factor / node-limit / policy order both engines return results in.
    let mut cells = Vec::with_capacity(grid.len());
    for &factor in &grid.factors {
        for &node_limit in &grid.node_limits {
            for &policy in &grid.policies {
                cells.push(Cell {
                    factor,
                    node_limit,
                    policy,
                });
            }
        }
    }

    let (results, stats) = if flags.incremental {
        let outcome = wrm_sim::sweep_grid(&base, &grid, flags.threads);
        (outcome.results, Some(outcome.stats))
    } else {
        let scenarios: Vec<Scenario> = (0..grid.factors.len())
            .flat_map(|fi| {
                let base = &base;
                let grid = &grid;
                (0..grid.node_limits.len()).flat_map(move |ni| {
                    (0..grid.policies.len()).map(move |pi| {
                        base.clone()
                            .with_options(grid.point_options(&base.options, fi, ni, pi))
                    })
                })
            })
            .collect();
        (run_all(&scenarios, flags.threads), None)
    };

    let resource = flags.resource.clone().unwrap_or_default();
    let output = match flags.format.as_str() {
        "json" => {
            let rows: Vec<serde_json::Value> = cells
                .iter()
                .zip(&results)
                .map(|(cell, result)| {
                    let (makespan, node_seconds, utilization, error) = match result {
                        Ok(r) => (
                            serde_json::json!(r.makespan),
                            serde_json::json!(r.node_seconds()),
                            serde_json::json!(r.utilization()),
                            serde_json::Value::Null,
                        ),
                        Err(e) => (
                            serde_json::Value::Null,
                            serde_json::Value::Null,
                            serde_json::Value::Null,
                            serde_json::json!(e.to_string()),
                        ),
                    };
                    serde_json::json!({
                        "workflow": base.workflow.name.clone(),
                        "machine": base.machine.name.clone(),
                        "resource": resource.clone(),
                        "factor": cell.factor,
                        "node_limit": cell.node_limit,
                        "policy": policy_name(cell.policy),
                        "makespan_s": makespan,
                        "node_seconds": node_seconds,
                        "utilization": utilization,
                        "error": error
                    })
                })
                .collect();
            let mut text = serde_json::to_string_pretty(&serde_json::Value::Array(rows))
                .map_err(|e| e.to_string())?;
            text.push('\n');
            text
        }
        // "text" is parse_flags' untouched default: sweep output is
        // tabular, so plain invocations get CSV.
        "csv" | "text" => {
            let mut text = String::from(
                "workflow,machine,resource,factor,node_limit,policy,\
                 makespan_s,node_seconds,utilization,error\n",
            );
            for (cell, result) in cells.iter().zip(&results) {
                let node_limit = cell.node_limit.map(|n| n.to_string()).unwrap_or_default();
                let (makespan, node_seconds, utilization, error) = match result {
                    Ok(r) => (
                        format!("{:.6}", r.makespan),
                        format!("{:.3}", r.node_seconds()),
                        format!("{:.6}", r.utilization()),
                        String::new(),
                    ),
                    Err(e) => (
                        String::new(),
                        String::new(),
                        String::new(),
                        e.to_string().replace(',', ";"),
                    ),
                };
                text.push_str(&format!(
                    "{},{},{},{},{},{},{},{},{},{}\n",
                    base.workflow.name,
                    base.machine.name,
                    resource,
                    cell.factor,
                    node_limit,
                    policy_name(cell.policy),
                    makespan,
                    node_seconds,
                    utilization,
                    error
                ));
            }
            text
        }
        other => return Err(format!("unknown --format `{other}` (expected json or csv)")),
    };

    match &flags.out {
        Some(path) => {
            std::fs::write(path, &output).map_err(|e| format!("cannot write {path}: {e}"))?;
            match &stats {
                Some(s) => eprintln!(
                    "wrote {} sweep row(s) to {path} ({} thread(s); incremental: \
                     {} analytic, {} replayed, {} cold, {} reused, {} error(s))",
                    cells.len(),
                    flags.threads.max(1),
                    s.fastpath,
                    s.replayed,
                    s.cold,
                    s.reused,
                    s.errors
                ),
                None => eprintln!(
                    "wrote {} sweep row(s) to {path} ({} thread(s))",
                    cells.len(),
                    flags.threads.max(1)
                ),
            }
        }
        None => print!("{output}"),
    }
    Ok(())
}
