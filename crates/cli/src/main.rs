//! `wrm` — the Workflow Roofline Model command line.
//!
//! ```text
//! wrm machines                          list built-in machine models
//! wrm lint <file.wrm|dir>... [options]  static analysis of workflow specs
//!     --format text|json|sarif          diagnostic output format
//!     --deny-warnings                   non-zero exit on warnings too
//!     --fix [--dry-run]                 apply machine-applicable fixes
//!                                       (--dry-run prints diffs instead)
//! wrm analyze <file.wrm> [options]      compile, (optionally) simulate,
//!                                       classify, advise, render
//!     --machine <name>                  override the file's machine
//!     --simulate                        run the simulator for the dot
//!     --contention <res>=<factor>       scale a shared resource
//!     --svg <out.svg>                   write the roofline figure
//!     --html <out.html>                 write a single-file HTML report
//!     --ascii                           print a terminal roofline
//! wrm simulate <file.wrm> [options]     simulate and print the trace
//!     --gantt                           print a Gantt chart
//!     --jsonl <out.jsonl>               write the trace as JSON lines
//! wrm sweep <file.wrm|builtin>          simulate a parameter grid in parallel
//!     --resource R --factors 1.0,0.5    contention factors on a resource
//!     --nodes 64,128                    scheduler node-pool limits
//!     --policies fifo,backfill          scheduler policies
//!     --threads N                       workers (0 = one per CPU; values
//!                                       above the host core count are capped)
//!     --format json|jsonl|csv           output format
//!     --no-incremental                  per-point simulation (the default
//!                                       incremental engine is bit-identical)
//!     --out <file>                      write rows to a file
//!     --quiet                           suppress the stderr stats line
//! wrm certify <file.wrm>                print the two-sided makespan
//!                                       certificate as JSON
//! wrm serve [--addr host:port]          long-running HTTP server exposing
//!     [--threads N] [--quiet]           simulate/certify/lint/sweep with a
//!     [--cache-capacity N]              compiled-index LRU (see docs/SERVE.md)
//! wrm figures [all|<id>] [--out <dir>]  regenerate paper figures
//! ```
//!
//! `lint` exits 0 when clean, 2 when any error-severity diagnostic
//! fired, and 1 when only warnings fired under `--deny-warnings`; with
//! several files the exit code is the worst across all of them.
//! `analyze`/`simulate` run the error-severity lint subset before
//! compiling, so a broken spec fails with spanned diagnostics instead
//! of a mid-compile error.

mod figures;
mod report;
mod sweep;

use std::io::Write as _;
use std::process::ExitCode;
use wrm_core::{machines, RooflineModel, Seconds};
use wrm_dag::{list_schedule, GanttChart, ParallelismProfile, Policy};
use wrm_sim::{simulate, Scenario, SimOptions};
use wrm_trace::{characterize, Structure};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("wrm: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let ok = |r: Result<(), String>| r.map(|()| ExitCode::SUCCESS);
    match args.first().map(String::as_str) {
        Some("machines") => ok(cmd_machines()),
        Some("lint") => cmd_lint(&args[1..]).map(ExitCode::from),
        Some("analyze") => ok(cmd_analyze(&args[1..])),
        Some("simulate") => ok(cmd_simulate(&args[1..])),
        Some("sweep") => ok(sweep::cmd_sweep(&args[1..])),
        Some("certify") => ok(cmd_certify(&args[1..])),
        Some("serve") => ok(cmd_serve(&args[1..])),
        Some("figures") => ok(cmd_figures(&args[1..])),
        Some("compare") => ok(cmd_compare(&args[1..])),
        Some("profile") => ok(cmd_profile(&args[1..])),
        Some("import") => ok(cmd_import(&args[1..])),
        Some("help") | None => {
            print!("{}", usage());
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> &'static str {
    "usage: wrm <command>\n\
     \n\
     commands:\n\
     \x20 machines                         list built-in machine models\n\
     \x20 lint <file.wrm|dir>... [--format text|json|sarif]\n\
     \x20      [--deny-warnings] [--fix [--dry-run]]\n\
     \x20                                    static analysis: undefined\n\
     \x20                                    references, cycles, dead\n\
     \x20                                    ceilings, infeasible targets,\n\
     \x20                                    redundant edges, starved\n\
     \x20                                    channels, critical-path bounds;\n\
     \x20                                    directories lint every .wrm\n\
     \x20 analyze <file.wrm> [--machine M] [--simulate] [--contention r=f]\n\
     \x20         [--svg out.svg] [--html out.html] [--ascii]\n\
     \x20         [--reps N [--seed S] [--percentiles]]\n\
     \x20                                    analyze a workflow file; --reps\n\
     \x20                                    adds Monte-Carlo percentile\n\
     \x20                                    makespans and (with --simulate\n\
     \x20                                    --svg) whiskers the measured\n\
     \x20                                    roofline dot\n\
     \x20 simulate <file.wrm> [--gantt] [--jsonl out.jsonl] [--contention r=f]\n\
     \x20          [--summary]               streaming aggregates only —\n\
     \x20                                    O(channels) result memory, for\n\
     \x20                                    very large (100k+ task) runs\n\
     \x20          [--reps N [--seed S] [--percentiles] [--threads N]]\n\
     \x20                                    Monte-Carlo replication over the\n\
     \x20                                    phase distributions: N seeded\n\
     \x20                                    runs on one compiled index,\n\
     \x20                                    streamed percentile makespans;\n\
     \x20                                    --threads 0 (default) = one per\n\
     \x20                                    CPU, byte-identical output at\n\
     \x20                                    any thread count\n\
     \x20 sweep <file.wrm|builtin> [--resource R --factors 1.0,0.5]\n\
     \x20       [--nodes 64,128] [--policies fifo,backfill] [--threads N]\n\
     \x20       [--format json|jsonl|csv] [--out file] [--no-incremental]\n\
     \x20       [--quiet]                    simulate a parameter grid in\n\
     \x20                                    parallel (builtins: lcls, bgw,\n\
     \x20                                    cosmoflow, gptune-rci, gptune-spawn);\n\
     \x20                                    the incremental engine (default)\n\
     \x20                                    shares index/prefix work across\n\
     \x20                                    the grid, bit-identically;\n\
     \x20                                    --threads 0 (default) = one per\n\
     \x20                                    CPU, explicit values capped at\n\
     \x20                                    the host core count\n\
     \x20 certify <file.wrm> [--machine M] [--contention r=f]\n\
     \x20                                    print the certified two-sided\n\
     \x20                                    makespan interval as JSON\n\
     \x20 serve [--addr host:port] [--threads N] [--cache-capacity N] [--quiet]\n\
     \x20                                    HTTP server for simulate, certify,\n\
     \x20                                    lint, and sweep over preloaded or\n\
     \x20                                    posted specs (see docs/SERVE.md)\n\
     \x20 figures [all|f1|f2|f3|f4|f5a|f5b|f6|f7a|f7b|f7c|f7d|f8|f9|f10|t1]\n\
     \x20         [--out dir]                 regenerate the paper's figures\n\
     \x20 compare <file.wrm>                 project the workflow onto every\n\
     \x20                                    built-in machine\n\
     \x20 profile <file.wrm> [--svg out.svg] simulate and chart parallelism\n\
     \x20                                    over time\n\
     \x20 import <report.csv> --machine M --structure T,P,N\n\
     \x20         [--svg out.svg]            analyze an external timing report\n\
     \x20 help                               this text\n"
}

fn cmd_machines() -> Result<(), String> {
    for m in machines::all() {
        println!("{} ({} nodes)", m.name, m.total_nodes);
        for r in &m.node_resources {
            println!("  node   {:<8} {:<12} {}", r.id, r.label, r.peak_per_node);
        }
        for r in &m.system_resources {
            println!(
                "  system {:<8} {:<12} {} ({})",
                r.id, r.label, r.peak, r.scaling
            );
        }
    }
    Ok(())
}

struct Flags {
    file: Option<String>,
    files: Vec<String>,
    fix: bool,
    dry_run: bool,
    machine: Option<String>,
    simulate: bool,
    summary: bool,
    contention: Vec<(String, f64)>,
    svg: Option<String>,
    ascii: bool,
    gantt: bool,
    jsonl: Option<String>,
    out_dir: String,
    id: String,
    structure: Option<(f64, f64, u64)>,
    html: Option<String>,
    format: String,
    deny_warnings: bool,
    out: Option<String>,
    resource: Option<String>,
    factors: Vec<f64>,
    nodes: Vec<u64>,
    policies: Vec<wrm_sim::SchedulerPolicy>,
    threads: usize,
    incremental: bool,
    quiet: bool,
    addr: String,
    cache_capacity: usize,
    reps: usize,
    seed: u64,
    percentiles: bool,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags {
        file: None,
        files: Vec::new(),
        fix: false,
        dry_run: false,
        machine: None,
        simulate: false,
        summary: false,
        contention: Vec::new(),
        svg: None,
        ascii: false,
        gantt: false,
        jsonl: None,
        out_dir: "figures".into(),
        id: "all".into(),
        structure: None,
        html: None,
        format: "text".into(),
        deny_warnings: false,
        out: None,
        resource: None,
        factors: Vec::new(),
        nodes: Vec::new(),
        policies: Vec::new(),
        threads: 0,
        incremental: true,
        quiet: false,
        addr: "127.0.0.1:8080".into(),
        cache_capacity: 32,
        reps: 0,
        seed: 0,
        percentiles: false,
    };
    let mut i = 0;
    let mut positional = 0;
    while i < args.len() {
        let a = &args[i];
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("flag {a} needs a value"))
        };
        match a.as_str() {
            "--machine" => f.machine = Some(value(&mut i)?),
            "--format" => f.format = value(&mut i)?,
            "--deny-warnings" => f.deny_warnings = true,
            "--fix" => f.fix = true,
            "--dry-run" => f.dry_run = true,
            "--simulate" => f.simulate = true,
            "--summary" => f.summary = true,
            "--ascii" => f.ascii = true,
            "--gantt" => f.gantt = true,
            "--svg" => f.svg = Some(value(&mut i)?),
            "--html" => f.html = Some(value(&mut i)?),
            "--jsonl" => f.jsonl = Some(value(&mut i)?),
            "--out" => {
                let v = value(&mut i)?;
                f.out_dir.clone_from(&v);
                f.out = Some(v);
            }
            "--resource" => f.resource = Some(value(&mut i)?),
            "--factors" => {
                let v = value(&mut i)?;
                f.factors = v
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<f64>()
                            .map_err(|_| format!("bad contention factor `{s}`"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--nodes" => {
                let v = value(&mut i)?;
                f.nodes = v
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<u64>()
                            .map_err(|_| format!("bad node count `{s}`"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--policies" => {
                let v = value(&mut i)?;
                f.policies = v
                    .split(',')
                    .map(|s| match s.trim() {
                        "fifo" => Ok(wrm_sim::SchedulerPolicy::Fifo),
                        "backfill" => Ok(wrm_sim::SchedulerPolicy::Backfill),
                        other => Err(format!(
                            "unknown policy `{other}` (expected fifo or backfill)"
                        )),
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--threads" => {
                let v = value(&mut i)?;
                f.threads = v.parse().map_err(|_| format!("bad thread count `{v}`"))?;
            }
            "--incremental" => f.incremental = true,
            "--no-incremental" => f.incremental = false,
            "--reps" => {
                let v = value(&mut i)?;
                f.reps = v
                    .parse()
                    .map_err(|_| format!("bad replication count `{v}`"))?;
            }
            "--seed" => {
                let v = value(&mut i)?;
                f.seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
            }
            "--percentiles" => f.percentiles = true,
            "--quiet" => f.quiet = true,
            "--addr" => f.addr = value(&mut i)?,
            "--cache-capacity" => {
                let v = value(&mut i)?;
                f.cache_capacity = v.parse().map_err(|_| format!("bad cache capacity `{v}`"))?;
            }
            "--structure" => {
                let v = value(&mut i)?;
                let parts: Vec<&str> = v.split(',').collect();
                if parts.len() != 3 {
                    return Err(format!(
                        "--structure expects total,parallel,nodes_per_task, got `{v}`"
                    ));
                }
                let total: f64 = parts[0]
                    .parse()
                    .map_err(|_| format!("bad total `{}`", parts[0]))?;
                let parallel: f64 = parts[1]
                    .parse()
                    .map_err(|_| format!("bad parallel `{}`", parts[1]))?;
                let nodes: u64 = parts[2]
                    .parse()
                    .map_err(|_| format!("bad nodes `{}`", parts[2]))?;
                f.structure = Some((total, parallel, nodes));
            }
            "--contention" => {
                let v = value(&mut i)?;
                let (res, factor) = v
                    .split_once('=')
                    .ok_or_else(|| format!("--contention expects res=factor, got `{v}`"))?;
                let factor: f64 = factor
                    .parse()
                    .map_err(|_| format!("bad contention factor `{factor}`"))?;
                f.contention.push((res.to_owned(), factor));
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}`"));
            }
            other => {
                if positional == 0 {
                    f.file = Some(other.to_owned());
                    f.id = other.to_owned();
                }
                f.files.push(other.to_owned());
                positional += 1;
            }
        }
        i += 1;
    }
    Ok(f)
}

// The lint-errors-first compile pipeline lives in `wrm_serve::resolve`
// so the server resolves posted sources through the identical path.
pub(crate) use wrm_serve::resolve::compile_checked;

fn load(flags: &Flags) -> Result<(wrm_lang::Compiled, wrm_core::Machine), String> {
    let path = flags
        .file
        .as_ref()
        .ok_or_else(|| "missing workflow file argument".to_owned())?;
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let compiled = compile_checked(path, &source)?;
    let machine = wrm_serve::resolve::resolve_machine(&compiled, flags.machine.as_deref())?;
    Ok((compiled, machine))
}

fn sim_options(flags: &Flags) -> SimOptions {
    let mut opts = SimOptions::default();
    for (res, factor) in &flags.contention {
        opts = opts.with_contention(res.clone(), *factor);
    }
    opts
}

/// Expands lint arguments: a directory becomes every `.wrm` file
/// directly inside it (sorted), a file passes through untouched.
fn expand_wrm_paths(args: &[String]) -> Result<Vec<String>, String> {
    let mut paths = Vec::new();
    for arg in args {
        let meta = std::fs::metadata(arg).map_err(|e| format!("cannot read {arg}: {e}"))?;
        if meta.is_dir() {
            let mut found = Vec::new();
            let entries = std::fs::read_dir(arg).map_err(|e| format!("cannot read {arg}: {e}"))?;
            for entry in entries {
                let entry = entry.map_err(|e| format!("cannot read {arg}: {e}"))?;
                let path = entry.path();
                if path.is_file() && path.extension().is_some_and(|e| e == "wrm") {
                    found.push(path.to_string_lossy().into_owned());
                }
            }
            found.sort();
            if found.is_empty() {
                return Err(format!("no .wrm files in directory {arg}"));
            }
            paths.extend(found);
        } else {
            paths.push(arg.clone());
        }
    }
    Ok(paths)
}

fn cmd_lint(args: &[String]) -> Result<u8, String> {
    let flags = parse_flags(args)?;
    if flags.files.is_empty() {
        return Err("missing workflow file argument".to_owned());
    }
    let paths = expand_wrm_paths(&flags.files)?;
    // (path, source, diagnostics) per file; sources are kept so fixes
    // and renders can slice them.
    let mut batch: Vec<(String, String, Vec<wrm_lint::Diagnostic>)> = Vec::new();
    for path in paths {
        let source =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let diags = wrm_lint::lint_source(&source);
        batch.push((path, source, diags));
    }

    if flags.fix {
        apply_lint_fixes(&mut batch, flags.dry_run)?;
    }

    // The reports come from `wrm_serve::render` — the same functions the
    // server answers `POST /v1/lint` with, so the bytes match.
    match flags.format.as_str() {
        "json" => print!("{}", wrm_serve::render::lint_json(&batch)?),
        "sarif" => print!("{}", wrm_serve::render::lint_sarif(&batch)?),
        "text" => print!("{}", wrm_serve::render::lint_text(&batch)),
        other => {
            return Err(format!(
                "unknown --format `{other}` (expected text, json, or sarif)"
            ))
        }
    }

    // The exit code aggregates the worst severity across every file.
    let worst = batch
        .iter()
        .filter_map(|(_, _, diags)| wrm_lint::max_severity(diags))
        .max();
    Ok(match worst {
        Some(wrm_lint::Severity::Error) => 2,
        Some(wrm_lint::Severity::Warning) if flags.deny_warnings => 1,
        _ => 0,
    })
}

/// `--fix`: applies every machine-applicable edit. With `--dry-run` the
/// would-be changes are printed as diffs and nothing is written;
/// otherwise files are rewritten in place and re-linted so the report
/// and exit code reflect the fixed sources.
fn apply_lint_fixes(
    batch: &mut [(String, String, Vec<wrm_lint::Diagnostic>)],
    dry_run: bool,
) -> Result<(), String> {
    for (path, source, diags) in batch.iter_mut() {
        let edits = wrm_lint::collect_edits(diags);
        if edits.is_empty() {
            continue;
        }
        let outcome = wrm_lint::apply_fixes(source, &edits);
        if dry_run {
            print!("{}", wrm_lint::fixit::diff(path, source, &outcome.fixed));
            continue;
        }
        std::fs::write(&*path, &outcome.fixed).map_err(|e| format!("cannot write {path}: {e}"))?;
        let skipped = if outcome.skipped.is_empty() {
            String::new()
        } else {
            format!(
                " ({} overlapping edit(s) skipped; rerun --fix to apply)",
                outcome.skipped.len()
            )
        };
        println!("{path}: applied {} fix(es){skipped}", outcome.applied.len());
        *source = outcome.fixed;
        *diags = wrm_lint::lint_source(source);
    }
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let (compiled, machine) = load(&flags)?;
    let mut wf = compiled.characterization().map_err(|e| e.to_string())?;

    if flags.simulate {
        let scenario =
            Scenario::new(machine.clone(), compiled.spec.clone()).with_options(sim_options(&flags));
        let result = simulate(&scenario).map_err(|e| e.to_string())?;
        wf.makespan = Some(Seconds(result.makespan));
        println!("simulated makespan: {:.2} s", result.makespan);
    }

    // The certified two-sided bound prints alongside the roofline:
    // whatever the schedule, the makespan provably lands in [lo, hi].
    if let Ok(cert) = wrm_sim::certify(&machine, &compiled.spec, &sim_options(&flags)) {
        println!(
            "certified makespan interval: [{:.2} s, {:.2} s]",
            cert.lo, cert.hi
        );
    }

    // --reps runs the Monte-Carlo engine over the distributional phases;
    // the extreme percentile makespans become a throughput whisker on
    // the roofline dot.
    let mut whisker = None;
    if flags.reps > 0 {
        let scenario =
            Scenario::new(machine.clone(), compiled.spec.clone()).with_options(sim_options(&flags));
        let mc = wrm_sim::mc_run(
            &scenario,
            &wrm_sim::McOptions {
                reps: flags.reps,
                seed: flags.seed,
                threads: flags.threads,
            },
        )
        .map_err(|e| e.to_string())?;
        print!(
            "{}",
            wrm_serve::render::mc_report(
                &compiled.spec.name,
                &machine.name,
                &mc,
                flags.percentiles
            )
        );
        if let (Some(first), Some(last)) = (mc.percentiles.first(), mc.percentiles.last()) {
            if first.value > 0.0 && last.value > 0.0 {
                whisker = Some((
                    wrm_core::TasksPerSec(wf.total_tasks / last.value),
                    wrm_core::TasksPerSec(wf.total_tasks / first.value),
                ));
            }
        }
    }

    let model = RooflineModel::build_lenient(&machine, &wf).map_err(|e| e.to_string())?;
    print!("{}", report::render(&model));

    if flags.ascii {
        println!("\n{}", wrm_plot::ascii::roofline(&model, 84, 24));
    }
    if let Some(path) = &flags.svg {
        let mut plot =
            wrm_plot::RooflinePlot::new(format!("{} on {}", wf.name, machine.name)).model(&model);
        if let Some((lo, hi)) = whisker {
            plot = plot.whisker(lo, hi);
        }
        let svg = plot
            .render_svg()
            .ok_or_else(|| "nothing to render".to_owned())?;
        std::fs::write(path, svg).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = &flags.html {
        let html = build_html_report(&flags, &compiled, &machine, &model)?;
        std::fs::write(path, html).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Assembles the single-file HTML report: analysis text, the roofline,
/// and (when --simulate ran) the Gantt chart, time breakdown, and
/// parallelism profile from the simulated run.
fn build_html_report(
    flags: &Flags,
    compiled: &wrm_lang::Compiled,
    machine: &wrm_core::Machine,
    model: &RooflineModel,
) -> Result<String, String> {
    use wrm_plot::Section;
    let mut sections = vec![
        Section::Heading("Analysis".into()),
        Section::Pre(report::render(model)),
        Section::Heading("Workflow Roofline".into()),
    ];
    if let Some(svg) =
        wrm_plot::RooflinePlot::new(format!("{} on {}", model.workflow.name, machine.name))
            .model(model)
            .render_svg()
    {
        sections.push(Section::Svg(svg));
    }
    if let Ok(dag0) = compiled.dag(machine) {
        if let Some(svg) = wrm_plot::skeleton::render_svg(&dag0, 860.0) {
            sections.push(Section::Heading("Skeleton".into()));
            sections.push(Section::Svg(svg));
        }
    }
    if flags.simulate {
        let scenario =
            Scenario::new(machine.clone(), compiled.spec.clone()).with_options(sim_options(flags));
        let result = simulate(&scenario).map_err(|e| e.to_string())?;
        let mut dag = compiled.dag(machine).map_err(|e| e.to_string())?;
        for id in dag.task_ids().collect::<Vec<_>>() {
            let name = dag.task(id).name.clone();
            if let Some(t) = result.trace.task_time(&name) {
                dag.task_mut(id).duration = t;
            }
        }
        let sched =
            list_schedule(&dag, machine.total_nodes, Policy::Fifo).map_err(|e| e.to_string())?;
        if let Ok(chart) = GanttChart::build(&dag, &sched) {
            sections.push(Section::Heading("Gantt chart".into()));
            sections.push(Section::Svg(wrm_plot::gantt_plot::render_svg(
                &[&chart],
                860.0,
            )));
        }
        sections.push(Section::Heading("Time breakdown".into()));
        sections.push(Section::Svg(wrm_plot::breakdown_plot::render_svg(
            "phase time by category",
            &[result.trace.breakdown()],
            680.0,
            420.0,
        )));
        let profile = ParallelismProfile::from_schedule(&sched);
        sections.push(Section::Heading("Parallelism profile".into()));
        sections.push(Section::Svg(wrm_plot::profile_plot::render_svg(
            "concurrency over time",
            &profile,
            760.0,
        )));
    }
    Ok(wrm_plot::html::render(
        &format!("{} on {}", model.workflow.name, machine.name),
        &sections,
    ))
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let (compiled, machine) = load(&flags)?;
    let scenario =
        Scenario::new(machine.clone(), compiled.spec.clone()).with_options(sim_options(&flags));
    if flags.reps > 0 {
        if flags.gantt || flags.jsonl.is_some() {
            return Err(
                "--reps keeps no per-replication trace; it cannot be combined with \
                        --gantt or --jsonl"
                    .into(),
            );
        }
        let mc = wrm_sim::mc_run(
            &scenario,
            &wrm_sim::McOptions {
                reps: flags.reps,
                seed: flags.seed,
                threads: flags.threads,
            },
        )
        .map_err(|e| e.to_string())?;
        print!(
            "{}",
            wrm_serve::render::mc_report(
                &compiled.spec.name,
                &machine.name,
                &mc,
                flags.percentiles
            )
        );
        return Ok(());
    }
    if flags.summary {
        if flags.gantt || flags.jsonl.is_some() {
            return Err(
                "--summary keeps no trace; it cannot be combined with --gantt or --jsonl".into(),
            );
        }
        let sum = wrm_sim::simulate_summary(&scenario).map_err(|e| e.to_string())?;
        print!(
            "{}",
            wrm_serve::render::summary_report(&compiled.spec.name, &machine.name, &sum)
        );
        return Ok(());
    }
    let result = simulate(&scenario).map_err(|e| e.to_string())?;
    let structure = Structure::new(
        compiled.total_tasks,
        compiled.parallel_tasks,
        compiled.nodes_per_task,
    );
    print!(
        "{}",
        wrm_serve::render::simulate_report(
            &compiled.spec.name,
            &machine.name,
            &result,
            &structure
        )?
    );

    if flags.gantt {
        let mut dag = compiled.dag(&machine).map_err(|e| e.to_string())?;
        for id in dag.task_ids().collect::<Vec<_>>() {
            let name = dag.task(id).name.clone();
            if let Some(t) = result.trace.task_time(&name) {
                dag.task_mut(id).duration = t;
            }
        }
        let sched =
            list_schedule(&dag, machine.total_nodes, Policy::Fifo).map_err(|e| e.to_string())?;
        let chart = GanttChart::build(&dag, &sched).map_err(|e| e.to_string())?;
        println!("\n{}", wrm_plot::ascii::gantt(&chart, 72));
    }
    if let Some(path) = &flags.jsonl {
        std::fs::write(path, result.trace.to_jsonl())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// `wrm certify` — the two-sided makespan certificate as JSON, byte-
/// identical to the server's `POST /v1/certify` response for the same
/// spec.
fn cmd_certify(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let (compiled, machine) = load(&flags)?;
    let cert = wrm_sim::certify(&machine, &compiled.spec, &sim_options(&flags))
        .map_err(|e| e.to_string())?;
    print!("{}", wrm_serve::render::certificate_json(&cert)?);
    Ok(())
}

/// `wrm serve` — block on the HTTP server until SIGTERM, SIGINT, or
/// `POST /admin/shutdown`.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    wrm_serve::run(wrm_serve::ServerConfig {
        addr: flags.addr.clone(),
        workers: flags.threads,
        cache_capacity: flags.cache_capacity,
        quiet: flags.quiet,
    })
}

fn cmd_figures(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let figures = if flags.id == "all" {
        figures::build_all()
    } else {
        vec![figures::build(&flags.id)
            .ok_or_else(|| format!("unknown figure id `{}` (try `all`)", flags.id))?]
    };
    std::fs::create_dir_all(&flags.out_dir)
        .map_err(|e| format!("cannot create {}: {e}", flags.out_dir))?;
    let mut stdout = std::io::stdout().lock();
    for fig in &figures {
        for (name, content) in &fig.files {
            let path = format!("{}/{name}", flags.out_dir);
            std::fs::write(&path, content)
                .map_err(|e| format!("[{}] cannot write {path}: {e}", fig.id))?;
        }
        writeln!(stdout, "{}", fig.summary).map_err(|e| e.to_string())?;
    }
    writeln!(
        stdout,
        "\nwrote {} file(s) to {}/",
        figures.iter().map(|f| f.files.len()).sum::<usize>(),
        flags.out_dir
    )
    .map_err(|e| e.to_string())?;
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let path = flags
        .file
        .as_ref()
        .ok_or_else(|| "missing workflow file argument".to_owned())?;
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let compiled = compile_checked(path, &source)?;
    let mut wf = compiled.characterization().map_err(|e| e.to_string())?;

    // Simulate on each machine to give every projection a measured dot.
    let all = machines::all();
    println!(
        "projecting `{}` ({} tasks, {} parallel, {} nodes/task) onto {} machines:\n",
        wf.name,
        wf.total_tasks,
        wf.parallel_tasks,
        wf.nodes_per_task,
        all.len()
    );
    let projections = wrm_core::across_machines(&wf, &all).map_err(|e| e.to_string())?;
    print!("{}", wrm_core::projection::render_table(&projections));

    // If a throughput target exists, answer the architect's question per
    // machine: what external/file-system peak would meet it?
    if wf.targets.throughput.is_some() {
        println!("\nrequired peaks to reach the throughput target:");
        for machine in &all {
            for res in [wrm_core::ids::EXTERNAL, wrm_core::ids::FILE_SYSTEM] {
                match wrm_core::required_peak(machine, &wf, res) {
                    Ok(Some(peak)) if peak.is_finite() => {
                        println!("  {:<18} {res:<4} -> {:.3e} B/s", machine.name, peak);
                    }
                    Ok(Some(_)) => println!(
                        "  {:<18} {res:<4} -> unattainable by scaling this resource",
                        machine.name
                    ),
                    Ok(None) => println!("  {:<18} {res:<4} -> already attainable", machine.name),
                    Err(_) => {}
                }
            }
        }
    }
    let _ = &mut wf;
    Ok(())
}

fn cmd_profile(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let (compiled, machine) = load(&flags)?;
    let scenario =
        Scenario::new(machine.clone(), compiled.spec.clone()).with_options(sim_options(&flags));
    let result = simulate(&scenario).map_err(|e| e.to_string())?;

    // Build the profile from the simulated task times.
    let mut dag = compiled.dag(&machine).map_err(|e| e.to_string())?;
    for id in dag.task_ids().collect::<Vec<_>>() {
        let name = dag.task(id).name.clone();
        if let Some(t) = result.trace.task_time(&name) {
            dag.task_mut(id).duration = t;
        }
    }
    let sched =
        list_schedule(&dag, machine.total_nodes, Policy::Fifo).map_err(|e| e.to_string())?;
    let profile = ParallelismProfile::from_schedule(&sched);
    println!(
        "{} on {}: makespan {:.2} s",
        compiled.spec.name, machine.name, result.makespan
    );
    println!(
        "  peak concurrency: {} tasks / {} nodes",
        profile.peak_tasks(),
        profile.peak_nodes()
    );
    println!("  mean concurrency: {:.2} tasks", profile.mean_tasks());
    println!(
        "  serial fraction:  {:.0}% of the makespan at <= 1 running task",
        profile.serial_fraction() * 100.0
    );
    if let Some(path) = &flags.svg {
        let svg = wrm_plot::profile_plot::render_svg(
            &format!("{} parallelism profile", compiled.spec.name),
            &profile,
            760.0,
        );
        std::fs::write(path, svg).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_import(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let path = flags
        .file
        .as_ref()
        .ok_or_else(|| "missing report file argument".to_owned())?;
    let machine_name = flags
        .machine
        .as_ref()
        .ok_or_else(|| "import needs --machine".to_owned())?;
    let machine = machines::by_name(machine_name)
        .ok_or_else(|| format!("unknown machine `{machine_name}`"))?;
    let csv = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let trace = wrm_trace::trace_from_csv(
        path.rsplit('/')
            .next()
            .unwrap_or(path)
            .trim_end_matches(".csv"),
        machine.name.clone(),
        &csv,
    )
    .map_err(|e| format!("{path}: {e}"))?;

    let structure = match &flags.structure {
        Some((t, p, n)) => Structure::new(*t, *p, *n),
        None => {
            // Infer: every task is one unit; assume all run in parallel
            // on the max node count seen.
            let tasks = trace.task_names().len().max(1) as f64;
            let nodes = trace.spans.iter().map(|s| s.nodes).max().unwrap_or(1);
            println!(
                "(no --structure given: assuming {tasks} tasks all parallel on {nodes} \
                 nodes each)"
            );
            Structure::new(tasks, tasks, nodes)
        }
    };
    let wf = characterize(&trace, &structure).map_err(|e| e.to_string())?;
    let model = RooflineModel::build_lenient(&machine, &wf).map_err(|e| e.to_string())?;
    print!("{}", report::render(&model));
    if let Some(path) = &flags.svg {
        let svg = wrm_plot::RooflinePlot::new(format!("{} on {}", wf.name, machine.name))
            .model(&model)
            .render_svg()
            .ok_or_else(|| "nothing to render".to_owned())?;
        std::fs::write(path, svg).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}
