//! Text reports for analyzed workflows: model summary, bound/zone
//! classification, and the optimization advice of paper §III-C.

use wrm_core::analysis::{advise, classify_bound, classify_zone, BoundKind};
use wrm_core::{CeilingKind, RooflineModel};

/// Renders a full plain-text analysis report for a built model.
pub fn render(model: &RooflineModel) -> String {
    let mut out = String::new();
    let wf = &model.workflow;
    out.push_str(&format!(
        "Workflow Roofline analysis: {} on {}\n",
        wf.name, model.machine_name
    ));
    out.push_str(&format!(
        "  tasks: {} total, {} parallel, {} nodes/task (wall @ {} tasks)\n",
        wf.total_tasks, wf.parallel_tasks, wf.nodes_per_task, model.parallelism_wall
    ));
    if let Some(m) = wf.makespan {
        out.push_str(&format!("  makespan: {m}\n"));
    }
    if let Ok(tps) = wf.throughput() {
        out.push_str(&format!("  throughput: {:.4e} tasks/s\n", tps.get()));
    }

    out.push_str("\nCeilings (most binding first at the workflow's parallelism):\n");
    let x = wf.parallel_tasks;
    let mut ceilings: Vec<_> = model.ceilings.iter().collect();
    ceilings.sort_by(|a, b| a.tps_at(x).get().total_cmp(&b.tps_at(x).get()));
    for c in ceilings {
        let kind = match c.kind {
            CeilingKind::Node => "node  ",
            CeilingKind::System => "system",
        };
        out.push_str(&format!(
            "  [{kind}] {:<52} bound {:.4e} tasks/s\n",
            c.label,
            c.tps_at(x).get()
        ));
    }

    let bounds = classify_bound(model);
    out.push_str("\nClassification:\n");
    let bound_text = match &bounds.bound {
        BoundKind::Node { resource } => format!("node-bound on `{resource}`"),
        BoundKind::System { resource } => format!("system-bound on `{resource}`"),
        BoundKind::Parallelism => "parallelism-bound (at the wall)".to_owned(),
        BoundKind::Unbounded => "unconstrained (no volumes recorded)".to_owned(),
    };
    out.push_str(&format!("  {bound_text}\n"));
    if let Some(e) = bounds.efficiency {
        out.push_str(&format!(
            "  achieved {:.1}% of the attainable envelope\n",
            e * 100.0
        ));
    }

    if let Ok(zone) = classify_zone(wf) {
        out.push_str(&format!(
            "  target zone: {:?} ({})\n",
            zone.zone,
            zone.zone.color()
        ));
        if let Some(m) = zone.makespan_margin {
            out.push_str(&format!("    makespan margin: {m:.2}x\n"));
        }
        if let Some(t) = zone.throughput_margin {
            out.push_str(&format!("    throughput margin: {t:.2}x\n"));
        }
    }

    let advice = advise(model);
    out.push_str(&format!("\nAdvice: {}\n", advice.headline));
    for (i, r) in advice.recommendations.iter().enumerate() {
        let gain = match r.max_gain {
            Some(g) => format!(" (<= {g:.1}x)"),
            None => String::new(),
        };
        out.push_str(&format!(
            "  {}. [{:?}] {:?}{gain}\n     {}\n",
            i + 1,
            r.audience,
            r.direction,
            r.rationale
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrm_core::{ids, machines, Bytes, Seconds, TasksPerSec, Work, WorkflowCharacterization};

    #[test]
    fn report_contains_all_sections() {
        let wf = WorkflowCharacterization::builder("LCLS")
            .total_tasks(6.0)
            .parallel_tasks(5.0)
            .nodes_per_task(32)
            .makespan(Seconds::minutes(17.0))
            .node_volume(ids::DRAM, Work::Bytes(Bytes::gb(32.0)))
            .system_volume(ids::EXTERNAL, Bytes::tb(5.0))
            .target_makespan(Seconds::secs(600.0))
            .target_throughput(TasksPerSec(0.01))
            .build()
            .unwrap();
        let model = RooflineModel::build(&machines::cori_haswell(), &wf).unwrap();
        let text = render(&model);
        assert!(text.contains("LCLS on Cori Haswell"));
        assert!(text.contains("wall @ 74 tasks"));
        assert!(text.contains("system-bound on `ext`"));
        assert!(text.contains("target zone"));
        assert!(text.contains("Advice:"));
        assert!(text.contains("[system]"));
        assert!(text.contains("[node  ]"));
    }

    #[test]
    fn report_without_makespan_or_targets() {
        let wf = WorkflowCharacterization::builder("plan")
            .system_volume(ids::FILE_SYSTEM, Bytes::gb(1.0))
            .build()
            .unwrap();
        let model = RooflineModel::build(&machines::perlmutter_gpu(), &wf).unwrap();
        let text = render(&model);
        assert!(!text.contains("makespan:"));
        assert!(!text.contains("target zone"));
        assert!(text.contains("Advice:"));
    }
}
