//! Regeneration of every table and figure in the paper's evaluation
//! (the per-experiment index of DESIGN.md). Each figure function returns
//! the SVG documents to write plus a text summary comparing the model's
//! numbers against the paper's.

use wrm_core::analysis::{classify_zone, remove_overhead, scale_intra_task_parallelism};
use wrm_core::{ids, machines, RooflineModel, Seconds, TaskView, TasksPerSec};
use wrm_dag::{list_schedule, GanttChart, Policy};
use wrm_plot::{breakdown_plot, gantt_plot, skeleton, ExtraDot, RooflinePlot};
use wrm_sim::simulate;
use wrm_trace::TimeBreakdown;
use wrm_workflows::{example, table1, Bgw, CosmoFlow, Day, GpTune, Lcls, Mode};

/// One regenerated figure: files to write and a printed summary.
pub struct Figure {
    /// Figure id (`f1`, `f5a`, ..., `t1`).
    pub id: &'static str,
    /// `(file name, contents)` pairs (SVG or text).
    pub files: Vec<(String, String)>,
    /// Headline comparison against the paper.
    pub summary: String,
}

/// All figure ids in paper order.
pub const ALL_IDS: [&str; 13] = [
    "f1", "f2", "f3", "f4", "f5a", "f5b", "f6", "f7a", "f7b", "f7c", "f7d", "f8", "f10",
];

/// Builds one figure by id (`t1` is also accepted).
pub fn build(id: &str) -> Option<Figure> {
    match id {
        "f1" => Some(f1()),
        "f2" => Some(f2()),
        "f3" => Some(f3()),
        "f4" => Some(f4()),
        "f5a" => Some(f5a()),
        "f5b" => Some(f5b()),
        "f6" => Some(f6()),
        "f7a" => Some(f7(64)),
        "f7b" => Some(f7(1024)),
        "f7c" => Some(f7c()),
        "f7d" => Some(f7d()),
        "f8" => Some(f8()),
        "f9" => Some(f9()),
        "f10" => Some(f10()),
        "t1" => Some(t1()),
        _ => None,
    }
}

/// Builds every figure (including f9 and t1).
pub fn build_all() -> Vec<Figure> {
    let mut ids: Vec<&str> = ALL_IDS.to_vec();
    ids.push("f9");
    ids.push("t1");
    ids.iter().filter_map(|id| build(id)).collect()
}

fn f1() -> Figure {
    let wf = example::fig1_characterization();
    let model = RooflineModel::build(&machines::perlmutter_gpu(), &wf).expect("valid");
    let svg = RooflinePlot::new("Fig. 1 — Workflow Roofline Model (example, PM-GPU)")
        .model(&model)
        .render_svg()
        .expect("has model");
    let summary = format!(
        "f1: example roofline. wall = {} (paper: 28); ceilings = {} \
         (FS 1TB@5.6TB/s, NIC 1TB/node@100GB/s, PCIe 4GB, 100 GFLOPs)",
        model.parallelism_wall,
        model.ceilings.len()
    );
    Figure {
        id: "f1",
        files: vec![("fig1_example.svg".into(), svg)],
        summary,
    }
}

fn f2() -> Figure {
    // A throughput-sensitive workflow meeting its deadline but not its
    // rate target (the yellow dot of Fig. 2b), then the 2x intra-task
    // rebalance of Fig. 2c.
    let wf = wrm_core::WorkflowCharacterization::builder("ensemble")
        .total_tasks(8.0)
        .parallel_tasks(8.0)
        .nodes_per_task(64)
        .makespan(Seconds::secs(800.0))
        .node_volume(
            ids::COMPUTE,
            wrm_core::Work::Flops(wrm_core::Flops::pflops(20.0)),
        )
        .system_volume(ids::FILE_SYSTEM, wrm_core::Bytes::tb(4.0))
        .target_makespan(Seconds::secs(1000.0))
        .target_throughput(TasksPerSec(0.05))
        .build()
        .expect("valid");
    let m = machines::perlmutter_gpu();
    let base = RooflineModel::build(&m, &wf).expect("valid");
    let zone = classify_zone(&wf).expect("measured");

    let rebalanced = scale_intra_task_parallelism(&wf, 2.0, 1.0).expect("valid");
    let shifted = RooflineModel::build(&m, &rebalanced).expect("valid");

    let svg_a = RooflinePlot::new("Fig. 2a/2b — target zones and the yellow-zone dot")
        .model(&base)
        .zones(true)
        .render_svg()
        .expect("has model");
    let svg_c = RooflinePlot::new("Fig. 2c — 2x intra-task parallelism: wall left, ceiling up")
        .model(&shifted)
        .render_svg()
        .expect("has model");
    let summary = format!(
        "f2: zone = {:?} (expect GoodMakespanPoorThroughput); 2x intra-task: wall {} -> {} \
         (2x left), node ceiling at x=2: {:.3e} -> {:.3e} tasks/s (2x up)",
        zone.zone,
        base.parallelism_wall,
        shifted.parallelism_wall,
        base.node_ceilings()[0].tps_at(2.0).get(),
        shifted.node_ceilings()[0].tps_at(2.0).get(),
    );
    Figure {
        id: "f2",
        files: vec![
            ("fig2ab_zones.svg".into(), svg_a),
            ("fig2c_rebalance.svg".into(), svg_c),
        ],
        summary,
    }
}

fn f3() -> Figure {
    let m = machines::perlmutter_gpu();
    // Node-bound: heavy per-node FLOPs, light I/O.
    let node_wf = wrm_core::WorkflowCharacterization::builder("node-bound")
        .total_tasks(4.0)
        .parallel_tasks(4.0)
        .nodes_per_task(64)
        .makespan(Seconds::secs(8000.0))
        .node_volume(
            ids::COMPUTE,
            wrm_core::Work::Flops(wrm_core::Flops::pflops(100.0)),
        )
        .system_volume(ids::FILE_SYSTEM, wrm_core::Bytes::gb(100.0))
        .build()
        .expect("valid");
    // System-bound: the LCLS pattern.
    let sys_wf = wrm_core::WorkflowCharacterization::builder("system-bound")
        .total_tasks(4.0)
        .parallel_tasks(4.0)
        .nodes_per_task(64)
        .makespan(Seconds::secs(8000.0))
        .node_volume(
            ids::COMPUTE,
            wrm_core::Work::Flops(wrm_core::Flops::tflops(10.0)),
        )
        .system_volume(ids::EXTERNAL, wrm_core::Bytes::tb(100.0))
        .build()
        .expect("valid");
    let node_model = RooflineModel::build(&m, &node_wf).expect("valid");
    let sys_model = RooflineModel::build(&m, &sys_wf).expect("valid");
    let nb = wrm_core::analysis::classify_bound(&node_model);
    let sb = wrm_core::analysis::classify_bound(&sys_model);
    let summary = format!(
        "f3: node case -> {:?}; system case -> {:?} (expect Node{{compute}} / System{{ext}})",
        nb.bound, sb.bound
    );
    Figure {
        id: "f3",
        files: vec![
            (
                "fig3a_node_bound.svg".into(),
                RooflinePlot::new("Fig. 3a — node-bound workflow")
                    .model(&node_model)
                    .render_svg()
                    .expect("has model"),
            ),
            (
                "fig3b_system_bound.svg".into(),
                RooflinePlot::new("Fig. 3b — system-bound workflow")
                    .model(&sys_model)
                    .render_svg()
                    .expect("has model"),
            ),
        ],
        summary,
    }
}

fn f4() -> Figure {
    let dag = Lcls::year_2020_on_cori().dag();
    let svg = skeleton::render_svg(&dag, 720.0).expect("acyclic");
    let summary = format!(
        "f4: LCLS skeleton. width = {} (paper: 5 parallel tasks), critical path length = {} \
         (paper: 2)",
        dag.max_width().expect("acyclic"),
        dag.critical_path_length().expect("acyclic")
    );
    Figure {
        id: "f4",
        files: vec![("fig4_lcls_skeleton.svg".into(), svg)],
        summary,
    }
}

fn f5a() -> Figure {
    let lcls = Lcls::year_2020_on_cori();
    let cori = machines::cori_haswell();
    let good_run = simulate(&lcls.scenario(cori.clone(), Day::Good)).expect("simulates");
    let bad_run = simulate(&lcls.scenario(cori.clone(), Day::Bad)).expect("simulates");

    let good = lcls
        .characterization(ids::BURST_BUFFER, Some(Seconds(good_run.makespan)))
        .with_name("Good days");
    let bad = lcls
        .characterization(ids::BURST_BUFFER, Some(Seconds(bad_run.makespan)))
        .with_name("Bad days");
    let good_model = RooflineModel::build(&cori, &good).expect("valid");
    let bad_machine = cori
        .with_scaled_resource(ids::EXTERNAL, Day::Bad.contention_factor())
        .expect("resource exists");
    let bad_model = RooflineModel::build(&bad_machine, &bad).expect("valid");

    let svg = RooflinePlot::new("Fig. 5a — LCLS on Cori-HSW (good vs bad days)")
        .model(&good_model)
        .model(&bad_model)
        .render_svg()
        .expect("has model");
    let summary = format!(
        "f5a: good day {:.0} s (paper 1020 s), bad day {:.0} s (paper 5100 s), ratio {:.1}x \
         (paper 5x); binding = {}; good-day efficiency vs external ceiling {:.0}%",
        good_run.makespan,
        bad_run.makespan,
        bad_run.makespan / good_run.makespan,
        good_model
            .binding_ceiling()
            .map(|c| c.resource.to_string())
            .unwrap_or_default(),
        good_model.efficiency().unwrap_or(0.0) * 100.0
    );
    Figure {
        id: "f5a",
        files: vec![("fig5a_lcls_cori.svg".into(), svg)],
        summary,
    }
}

fn f5b() -> Figure {
    let lcls = Lcls::year_2020_on_cori();
    let cori = machines::cori_haswell();
    let mut bars = Vec::new();
    let mut summary_parts = Vec::new();
    for (day, label) in [(Day::Good, "Good days"), (Day::Bad, "Bad days")] {
        let run = simulate(&lcls.scenario(cori.clone(), day)).expect("simulates");
        let b = run.trace.breakdown();
        // Collapse into the paper's two categories.
        let loading = b.get("io:ext");
        let analysis: f64 = b.total() - loading;
        summary_parts.push(format!(
            "{label}: loading {loading:.0} s vs analysis {analysis:.0} s"
        ));
        bars.push(TimeBreakdown {
            label: label.into(),
            categories: vec![
                ("loading data".into(), loading),
                ("analysis".into(), analysis),
            ],
        });
    }
    let svg = breakdown_plot::render_svg("Fig. 5b — LCLS time breakdown", &bars, 640.0, 420.0);
    Figure {
        id: "f5b",
        files: vec![("fig5b_lcls_breakdown.svg".into(), svg)],
        summary: format!(
            "f5b: {} (paper: loading dominates both cases)",
            summary_parts.join("; ")
        ),
    }
}

fn f6() -> Figure {
    let lcls = Lcls::year_2024_on_pm();
    let pm = machines::perlmutter_cpu();
    let run = simulate(&lcls.scenario(pm.clone(), Day::Good)).expect("simulates");
    let wf = lcls.characterization(ids::FILE_SYSTEM, Some(Seconds(run.makespan)));
    let model = RooflineModel::build(&pm, &wf).expect("valid");
    let contended = pm
        .with_scaled_resource(ids::EXTERNAL, 0.2)
        .expect("resource exists");
    let contended_model =
        RooflineModel::build(&contended, &wf.with_name("LCLS (5x contention)")).expect("valid");
    let ext = model
        .ceilings
        .iter()
        .find(|c| c.resource.as_str() == ids::EXTERNAL)
        .expect("external ceiling");
    let svg = RooflinePlot::new("Fig. 6 — LCLS on PM-CPU (DTN external, contention)")
        .model(&model)
        .model(&contended_model)
        .render_svg()
        .expect("has model");
    let summary = format!(
        "f6: wall = {} (paper 384); ideal 5 TB load = {:.1} min (paper 3.4 min); external \
         ceiling {:.3} tasks/s vs target {:.3} (paper: slightly above); 5x contention drops \
         the ceiling below target: {}",
        model.parallelism_wall,
        wf.system_volumes[ids::EXTERNAL].get() / 25e9 / 60.0,
        ext.tps_at_one.get(),
        wf.targets.throughput.expect("target").get(),
        contended_model
            .ceilings
            .iter()
            .find(|c| c.resource.as_str() == ids::EXTERNAL)
            .expect("external ceiling")
            .tps_at_one
            .get()
            < wf.targets.throughput.expect("target").get()
    );
    Figure {
        id: "f6",
        files: vec![("fig6_lcls_pm.svg".into(), svg)],
        summary,
    }
}

fn f7(nodes: u64) -> Figure {
    let bgw = if nodes == 64 {
        Bgw::si998_64()
    } else {
        Bgw::si998_1024()
    };
    let run = simulate(&bgw.scenario()).expect("simulates");
    let model = RooflineModel::build(&machines::perlmutter_gpu(), &bgw.characterization(true))
        .expect("valid");
    let title = format!(
        "Fig. 7{} — BGW on PM-GPU ({nodes} nodes/task)",
        if nodes == 64 { 'a' } else { 'b' }
    );
    let svg = RooflinePlot::new(title)
        .model(&model)
        .render_svg()
        .expect("has model");
    let (id, paper_eff): (&'static str, f64) = if nodes == 64 {
        ("f7a", 0.42)
    } else {
        ("f7b", 0.30)
    };
    let summary = format!(
        "{id}: wall = {} (paper {}), measured {:.1} s vs simulated {:.1} s, efficiency \
         {:.0}% of node peak (paper ~{:.0}%), binding = {}",
        model.parallelism_wall,
        if nodes == 64 { 28 } else { 1 },
        bgw.makespan().get(),
        run.makespan,
        model.efficiency().unwrap_or(0.0) * 100.0,
        paper_eff * 100.0,
        model
            .binding_ceiling()
            .map(|c| c.resource.to_string())
            .unwrap_or_default()
    );
    Figure {
        id,
        files: vec![(
            format!(
                "fig7{}_bgw_{nodes}.svg",
                if nodes == 64 { 'a' } else { 'b' }
            ),
            svg,
        )],
        summary,
    }
}

fn f7c() -> Figure {
    let m = machines::perlmutter_gpu();
    let b64 = Bgw::si998_64();
    let b1024 = Bgw::si998_1024();
    let view64 = TaskView::build(&m, &b64.task_characterizations()).expect("valid");
    let view1024 = TaskView::build(&m, &b1024.task_characterizations()).expect("valid");

    let mut plot = RooflinePlot::new("Fig. 7c — BGW task view (E/S at 64 and 1024 nodes)")
        .model(&RooflineModel::build(&m, &b64.characterization(true)).expect("valid"))
        .targets(false);
    for (view, suffix) in [(&view64, "64"), (&view1024, "1024")] {
        for p in &view.points {
            plot = plot.dot(ExtraDot {
                label: format!(
                    "{} ({suffix} nodes, {:.0} s)",
                    p.name,
                    p.measured.expect("measured").get()
                ),
                x: 1.0,
                tps: TasksPerSec(p.tps.expect("measured").get()),
                color: String::new(),
                hollow: suffix == "1024",
                whisker: None,
            });
        }
    }
    let svg = plot.render_svg().expect("has model");
    let mut text = String::from("task,nodes,ceiling_time_s,measured_s,node_efficiency\n");
    for (view, nodes) in [(&view64, 64), (&view1024, 1024)] {
        for p in &view.points {
            text.push_str(&format!(
                "{},{nodes},{:.1},{:.1},{:.3}\n",
                p.name,
                p.ceiling_times[ids::COMPUTE].get(),
                p.measured.expect("measured").get(),
                p.node_efficiency.expect("measured"),
            ));
        }
    }
    let summary = format!(
        "f7c: dominant task = {} (paper: Sigma lowest dot); optimization candidate = {} \
         (paper: Epsilon farther from its ceiling); E/S efficiency at 1024 = {:.0}%/{:.0}% \
         (paper ~16%/36%)",
        view64.dominant_task().expect("measured").name,
        view1024
            .best_optimization_candidate()
            .expect("measured")
            .name,
        view1024.points[0].node_efficiency.expect("measured") * 100.0,
        view1024.points[1].node_efficiency.expect("measured") * 100.0,
    );
    Figure {
        id: "f7c",
        files: vec![
            ("fig7c_bgw_taskview.svg".into(), svg),
            ("fig7c_taskview.csv".into(), text),
        ],
        summary,
    }
}

fn f7d() -> Figure {
    let mut charts = Vec::new();
    for bgw in [Bgw::si998_64(), Bgw::si998_1024()] {
        let mut dag = bgw.dag();
        dag.name = format!("BGW ({} nodes/task)", bgw.nodes);
        let sched = list_schedule(&dag, 1792, Policy::Fifo).expect("schedules");
        charts.push(GanttChart::build(&dag, &sched).expect("valid"));
    }
    let refs: Vec<&GanttChart> = charts.iter().collect();
    let svg = gantt_plot::render_svg(&refs, 820.0);
    let summary = format!(
        "f7d: critical path covers {:.0}%/{:.0}% of the makespan at 64/1024 nodes \
         (paper: the critical path is unchanged across scales); makespans {:.0} s and {:.0} s",
        charts[0].critical_path_coverage() * 100.0,
        charts[1].critical_path_coverage() * 100.0,
        charts[0].makespan,
        charts[1].makespan
    );
    Figure {
        id: "f7d",
        files: vec![("fig7d_bgw_gantt.svg".into(), svg)],
        summary,
    }
}

fn f8() -> Figure {
    let cosmo12 = CosmoFlow::throughput_benchmark(12);
    let model = RooflineModel::build(&machines::perlmutter_gpu(), &cosmo12.characterization())
        .expect("valid");
    let mut plot = RooflinePlot::new("Fig. 8 — CosmoFlow throughput on PM-GPU").model(&model);
    // Measured series: 1..12 instances (simulated, 5 epochs each for
    // speed; throughput is epoch-time invariant).
    let mut series = String::from("instances,epochs_per_s\n");
    let mut rates = Vec::new();
    for n in 1..=12usize {
        let mut c = CosmoFlow::throughput_benchmark(n);
        c.epochs_per_instance = 5;
        let run = simulate(&c.scenario()).expect("simulates");
        let tps = c.total_epochs() / run.makespan;
        rates.push(tps);
        series.push_str(&format!("{n},{tps:.4}\n"));
        if n < 12 {
            plot = plot.dot(ExtraDot {
                label: format!("{n} instances"),
                x: n as f64,
                tps: TasksPerSec(tps),
                color: "#1565c0".into(),
                hollow: false,
                whisker: None,
            });
        }
    }
    let svg = plot.render_svg().expect("has model");
    let linearity = rates[11] / (12.0 * rates[0]);
    let summary = format!(
        "f8: PCIe ceiling {:.2} s, HBM ceiling {:.2} s per epoch (paper 0.8 s / 4.2 s); \
         wall 12 instances; throughput at 12 instances = {:.1}x single instance \
         (paper: linear; ours {:.0}% linear); binding node ceiling = {}",
        cosmo12.pcie_time().get(),
        cosmo12.hbm_time().get(),
        rates[11] / rates[0],
        linearity * 100.0,
        model.node_ceilings()[0].resource
    );
    Figure {
        id: "f8",
        files: vec![
            ("fig8_cosmoflow.svg".into(), svg),
            ("fig8_series.csv".into(), series),
        ],
        summary,
    }
}

fn f9() -> Figure {
    // Render 4-iteration skeletons of the two control flows.
    let g = GpTune {
        samples: 4,
        ..GpTune::default()
    };
    let m = machines::perlmutter_cpu();
    let mut files = Vec::new();
    for mode in [Mode::Rci, Mode::Spawn] {
        let dag = g.spec(mode).to_dag(&m).expect("valid spec");
        let svg = skeleton::render_svg(&dag, 860.0).expect("acyclic");
        files.push((
            format!("fig9_{}_skeleton.svg", mode.name().to_lowercase()),
            svg,
        ));
    }
    Figure {
        id: "f9",
        files,
        summary: "f9: GPTune RCI vs Spawn control-flow skeletons (serialized chains; RCI \
                  repeats bash+srun+metadata-I/O per iteration, Spawn keeps metadata in memory)"
            .into(),
    }
}

fn f10() -> Figure {
    let g = GpTune::default();
    let m = machines::perlmutter_cpu();
    let rci_run = simulate(&g.scenario(Mode::Rci)).expect("simulates");
    let spawn_run = simulate(&g.scenario(Mode::Spawn)).expect("simulates");

    let rci = g.characterization(Mode::Rci, Some(Seconds(rci_run.makespan)));
    let spawn = g.characterization(Mode::Spawn, Some(Seconds(spawn_run.makespan)));
    let projected = remove_overhead(&spawn, Seconds(g.python_per_iter.get() * g.samples as f64))
        .expect("python overhead < makespan");

    let rci_model = RooflineModel::build(&m, &rci).expect("valid");
    let spawn_model = RooflineModel::build(&m, &spawn).expect("valid");
    let svg_a = RooflinePlot::new("Fig. 10a — GPTune on PM-CPU (RCI vs Spawn vs projected)")
        .model(&rci_model)
        .model(&spawn_model)
        .dot(ExtraDot {
            label: "projected (no python)".into(),
            x: 1.0,
            tps: TasksPerSec(1.0 / projected.makespan.expect("set").get()),
            color: "#2e7d32".into(),
            hollow: true,
            whisker: None,
        })
        .render_svg()
        .expect("has model");

    let bars = vec![
        g.breakdown(Mode::Rci),
        g.breakdown(Mode::Spawn),
        g.breakdown(Mode::Projected),
    ];
    let svg_b = breakdown_plot::render_svg("Fig. 10b — GPTune time breakdown", &bars, 680.0, 440.0);

    let speedup = rci_run.makespan / spawn_run.makespan;
    let projection = spawn_run.makespan / projected.makespan.expect("set").get();
    let summary = format!(
        "f10: RCI {:.0} s (paper 553), Spawn {:.0} s (paper 228), speedup {:.1}x (paper \
         2.4x); projected python-free gain {:.1}x (paper ~12x); I/O time 30 s vs 0.02 s \
         while volumes differ only 45 vs 40 MB",
        rci_run.makespan, spawn_run.makespan, speedup, projection
    );
    Figure {
        id: "f10",
        files: vec![
            ("fig10a_gptune.svg".into(), svg_a),
            ("fig10b_gptune_breakdown.svg".into(), svg_b),
        ],
        summary,
    }
}

fn t1() -> Figure {
    let text = table1::render_table1();
    Figure {
        id: "t1",
        files: vec![("table1_sources.txt".into(), text.clone())],
        summary: format!("t1: characterization-source matrix\n{text}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_figure_builds() {
        let figures = build_all();
        assert_eq!(figures.len(), ALL_IDS.len() + 2); // + f9, t1
        for f in &figures {
            assert!(!f.files.is_empty(), "{} has no files", f.id);
            assert!(!f.summary.is_empty());
            for (name, content) in &f.files {
                assert!(!content.is_empty(), "{name} empty");
                if name.ends_with(".svg") {
                    assert!(content.contains("<svg"), "{name} is not SVG");
                }
            }
        }
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(build("f99").is_none());
    }

    #[test]
    fn f5a_headline_shape() {
        let f = build("f5a").unwrap();
        assert!(
            f.summary.contains("ratio 5.0x") || f.summary.contains("ratio 4.9x"),
            "{}",
            f.summary
        );
    }

    #[test]
    fn f10_headline_shape() {
        let f = build("f10").unwrap();
        assert!(f.summary.contains("speedup 2.4x"), "{}", f.summary);
    }
}
