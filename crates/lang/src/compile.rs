//! Compiler: [`WorkflowAst`] -> simulator spec + roofline
//! characterization + planning DAG.
//!
//! Replicated tasks (`task analyze[5]`) expand to `analyze[0]` ..
//! `analyze[4]`; `after analyze` gates on *every* replica, `after
//! analyze[2]` on one.

use crate::ast::{MachineAst, PhaseAst, TaskAst, WorkflowAst};
use crate::parser::parse;
use crate::token::LangError;
use wrm_core::{
    machines, Bytes, BytesPerSec, Flops, FlopsPerSec, Machine, Rate, Seconds, TargetSpec,
    TasksPerSec, Work, WorkflowCharacterization,
};
use wrm_dag::Dag;
use wrm_sim::{Phase, TaskSpec, WorkflowSpec};

/// A fully-compiled workflow.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The simulator input.
    pub spec: WorkflowSpec,
    /// The machine named by `on ...`, when present and known.
    pub machine: Option<Machine>,
    /// Targets.
    pub targets: TargetSpec,
    /// Total task count after replication.
    pub total_tasks: f64,
    /// Structural parallelism: the widest dependency level.
    pub parallel_tasks: f64,
    /// The largest per-task node requirement.
    pub nodes_per_task: u64,
}

impl Compiled {
    /// The dependency DAG with ideal durations on `machine`.
    pub fn dag(&self, machine: &Machine) -> Result<Dag, LangError> {
        self.spec
            .to_dag(machine)
            .map_err(|e| LangError::new(format!("workflow graph: {e}"), 0, 0))
    }

    /// The plan-time characterization of this workflow on its roofline:
    /// per-slot node volumes and total system volumes, with targets
    /// attached and no measured makespan (simulate to get the dot).
    pub fn characterization(&self) -> Result<WorkflowCharacterization, LangError> {
        let mut b = WorkflowCharacterization::builder(self.spec.name.clone())
            .total_tasks(self.total_tasks)
            .parallel_tasks(self.parallel_tasks)
            .nodes_per_task(self.nodes_per_task)
            .targets(self.targets);
        let slot = self.parallel_tasks;
        let mut compute = 0.0f64;
        for t in &self.spec.tasks {
            let nodes = t.nodes.max(1) as f64;
            for p in &t.phases {
                match p {
                    Phase::Compute { flops, .. } => compute += flops / nodes,
                    Phase::NodeData {
                        resource, bytes, ..
                    } => {
                        b = b.node_volume(
                            resource.as_str(),
                            Work::Bytes(Bytes(bytes / nodes / slot)),
                        );
                    }
                    Phase::SystemData {
                        resource, bytes, ..
                    } => {
                        b = b.system_volume(resource.as_str(), Bytes(*bytes));
                    }
                    Phase::Overhead { .. } => {}
                }
            }
        }
        if compute > 0.0 {
            b = b.node_volume(wrm_core::ids::COMPUTE, Work::Flops(Flops(compute / slot)));
        }
        b.build()
            .map_err(|e| LangError::new(format!("characterization: {e}"), 0, 0))
    }
}

fn replica_name(base: &str, index: usize, count: usize) -> String {
    if count == 1 {
        base.to_owned()
    } else {
        format!("{base}[{index}]")
    }
}

/// The Monte-Carlo distribution side-table for a task: one entry per
/// phase that carries a *non-degenerate* distribution call. Point-mass
/// and absent distributions are omitted — the plain phase quantity (the
/// distribution mean) already describes them, which keeps the
/// deterministic spec (and its fingerprints) byte-identical to a file
/// written without distributions.
fn dists_of(ast: &TaskAst) -> Vec<wrm_sim::PhaseDist> {
    ast.phases
        .iter()
        .enumerate()
        .filter_map(|(i, p)| {
            let dist = p.dist()?.to_dist();
            if dist.as_point().is_some() {
                return None;
            }
            Some(wrm_sim::PhaseDist {
                phase: i as u32,
                dist,
            })
        })
        .collect()
}

fn phases_of(ast: &TaskAst) -> Vec<Phase> {
    ast.phases
        .iter()
        .map(|p| match p {
            PhaseAst::Compute { flops, eff, .. } => Phase::Compute {
                flops: *flops,
                efficiency: *eff,
            },
            PhaseAst::NodeBytes {
                resource,
                bytes,
                eff,
                ..
            } => Phase::NodeData {
                resource: resource.clone(),
                bytes: *bytes,
                efficiency: *eff,
            },
            PhaseAst::SystemBytes {
                resource,
                bytes,
                cap,
                ..
            } => Phase::SystemData {
                resource: resource.clone(),
                bytes: *bytes,
                stream_cap: *cap,
            },
            PhaseAst::Overhead { label, seconds, .. } => Phase::Overhead {
                label: label.clone(),
                seconds: *seconds,
            },
        })
        .collect()
}

/// The parser accepts out-of-range efficiencies and zero replica counts
/// so the linter can report them with proper codes; reject them here so
/// `compile()` never builds a nonsensical model.
fn check_values(ast: &WorkflowAst) -> Result<(), LangError> {
    for t in &ast.tasks {
        if t.count == 0 {
            return Err(LangError::new(
                "replica count must be at least 1",
                t.count_span.line,
                t.count_span.col,
            ));
        }
        for p in &t.phases {
            if let PhaseAst::Compute { eff, eff_span, .. }
            | PhaseAst::NodeBytes { eff, eff_span, .. } = p
            {
                if !(*eff > 0.0 && *eff <= 1.0) {
                    return Err(LangError::new(
                        format!("eff must be in (0, 1], got {eff}"),
                        eff_span.line,
                        eff_span.col,
                    ));
                }
            }
            if let Some(d) = p.dist() {
                if let Err(reason) = d.to_dist().validate() {
                    let span = d.span();
                    return Err(LangError::new(
                        format!("invalid distribution: {reason}"),
                        span.line,
                        span.col,
                    ));
                }
            }
        }
    }
    Ok(())
}

fn build_machine(ast: &MachineAst) -> Result<Machine, LangError> {
    let mut b = Machine::builder(ast.name.clone(), ast.nodes);
    for (id, peak, is_flops) in &ast.node_resources {
        let rate = if *is_flops {
            Rate::FlopsPerSec(FlopsPerSec(*peak))
        } else {
            Rate::BytesPerSec(BytesPerSec(*peak))
        };
        b = b.node(id.as_str(), id.clone(), rate);
    }
    for (id, peak, per_node) in &ast.system_resources {
        if *per_node {
            b = b.system_per_node(id.as_str(), id.clone(), BytesPerSec(*peak));
        } else {
            b = b.system(id.as_str(), id.clone(), BytesPerSec(*peak));
        }
    }
    b.build()
        .map_err(|e| LangError::new(format!("machine `{}`: {e}", ast.name), 0, 0))
}

/// Compiles a parsed AST.
pub fn compile(ast: &WorkflowAst) -> Result<Compiled, LangError> {
    check_values(ast)?;

    // Map base name -> replica count for dependency expansion.
    let mut counts = std::collections::BTreeMap::new();
    for t in &ast.tasks {
        if counts.insert(t.name.clone(), t.count).is_some() {
            return Err(LangError::new(
                format!("task `{}` is declared twice", t.name),
                t.span.line,
                t.span.col,
            ));
        }
    }

    let mut spec = WorkflowSpec::new(ast.name.clone());
    for t in &ast.tasks {
        for i in 0..t.count {
            let mut task = TaskSpec::new(replica_name(&t.name, i, t.count), t.nodes.max(1));
            task.phases = phases_of(t);
            task.dists = dists_of(t);
            if t.chain && i > 0 {
                task = task.after(replica_name(&t.name, i - 1, t.count));
            }
            for dep in &t.after {
                let Some(&dep_count) = counts.get(&dep.name) else {
                    return Err(LangError::new(
                        format!("task `{}` depends on unknown task `{}`", t.name, dep.name),
                        dep.span.line,
                        dep.span.col,
                    ));
                };
                match dep.index {
                    Some(idx) => {
                        if idx >= dep_count {
                            return Err(LangError::new(
                                format!(
                                    "task `{}` references `{}[{idx}]` but only {dep_count} \
                                     replicas exist",
                                    t.name, dep.name
                                ),
                                dep.span.line,
                                dep.span.col,
                            ));
                        }
                        task = task.after(replica_name(&dep.name, idx, dep_count));
                    }
                    None => {
                        for j in 0..dep_count {
                            task = task.after(replica_name(&dep.name, j, dep_count));
                        }
                    }
                }
            }
            spec = spec.task(task);
        }
    }

    spec.validate()
        .map_err(|e| LangError::new(format!("invalid workflow: {e}"), 0, 0))?;

    // Structure: width of the widest level.
    let dag = spec
        .to_dag_with(|_| 0.0)
        .map_err(|e| LangError::new(format!("workflow graph: {e}"), 0, 0))?;
    let parallel =
        dag.max_width()
            .map_err(|e| LangError::new(format!("workflow graph: {e}"), 0, 0))? as f64;

    // Custom machines declared in the file shadow the presets.
    let machine = match &ast.machine {
        Some(name) => {
            let custom = ast.machines.iter().find(|m| &m.name == name);
            Some(match custom {
                Some(m) => build_machine(m)?,
                None => machines::by_name(name).ok_or_else(|| {
                    LangError::new(
                        format!(
                            "unknown machine `{name}` (known presets: pm-gpu, pm-cpu,                              cori-hsw; or declare `machine {name} {{ ... }}`)"
                        ),
                        ast.machine_span.line,
                        ast.machine_span.col,
                    )
                })?,
            })
        }
        None => None,
    };

    let targets = TargetSpec {
        makespan: ast.targets.makespan.map(Seconds),
        throughput: ast.targets.throughput.map(TasksPerSec),
    };

    let nodes_per_task = spec.tasks.iter().map(|t| t.nodes).max().unwrap_or(1);
    let total_tasks = spec.tasks.len().max(1) as f64;

    Ok(Compiled {
        spec,
        machine,
        targets,
        total_tasks,
        parallel_tasks: parallel.max(1.0),
        nodes_per_task,
    })
}

/// Parses and compiles in one step.
pub fn compile_source(source: &str) -> Result<Compiled, LangError> {
    compile(&parse(source)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrm_core::ids;
    use wrm_sim::{simulate, Scenario};

    const LCLS: &str = r#"
workflow lcls on cori-hsw {
  targets { makespan 10min  throughput 6 per 600s }
  task analyze[5] {
    nodes 32
    system_bytes ext 1TB cap 1GB/s
    node_bytes dram 1024GB
  }
  task merge { nodes 1 system_bytes bb 5GB after analyze }
}
"#;

    #[test]
    fn compiles_and_simulates_lcls() {
        let c = compile_source(LCLS).unwrap();
        assert_eq!(c.total_tasks, 6.0);
        assert_eq!(c.parallel_tasks, 5.0);
        assert_eq!(c.nodes_per_task, 32);
        assert_eq!(c.spec.tasks.len(), 6);
        let machine = c.machine.clone().unwrap();
        assert_eq!(machine.name, "Cori Haswell");
        let r = simulate(&Scenario::new(machine, c.spec.clone())).unwrap();
        assert!(
            (r.makespan - 1000.0).abs() < 20.0,
            "makespan {}",
            r.makespan
        );
    }

    #[test]
    fn replica_dependencies_expand() {
        let c = compile_source(LCLS).unwrap();
        let merge = c.spec.tasks.iter().find(|t| t.name == "merge").unwrap();
        assert_eq!(merge.after.len(), 5);
        assert!(merge.after.contains(&"analyze[4]".to_owned()));
    }

    #[test]
    fn characterization_matches_manual() {
        let c = compile_source(LCLS).unwrap();
        let wf = c.characterization().unwrap();
        assert_eq!(wf.total_tasks, 6.0);
        // External volume: 5 x 1 TB.
        assert!((wf.system_volumes[ids::EXTERNAL].get() - 5e12).abs() < 1.0);
        // DRAM per node per slot: 1024 GB / 32 nodes = 32 GB.
        assert!((wf.node_volumes[ids::DRAM].magnitude() - 32e9).abs() < 1.0);
        assert_eq!(wf.targets.makespan, Some(Seconds(600.0)));
        // Model builds against the named machine.
        let model = wrm_core::RooflineModel::build(&c.machine.unwrap(), &wf).unwrap();
        assert_eq!(model.parallelism_wall, 74);
    }

    #[test]
    fn single_replica_keeps_bare_name() {
        let c = compile_source("workflow w { task solo { nodes 2 } }").unwrap();
        assert_eq!(c.spec.tasks[0].name, "solo");
    }

    #[test]
    fn indexed_dependency() {
        let c = compile_source("workflow w { task a[3] { } task b { after a[2] } }").unwrap();
        let b = c.spec.tasks.iter().find(|t| t.name == "b").unwrap();
        assert_eq!(b.after, vec!["a[2]".to_owned()]);
    }

    #[test]
    fn compile_errors() {
        let e = compile_source("workflow w { task b { after ghost } }").unwrap_err();
        assert!(e.message.contains("unknown task `ghost`"), "{e}");
        let e = compile_source("workflow w { task a[2] { } task b { after a[5] } }").unwrap_err();
        assert!(e.message.contains("only 2 replicas"), "{e}");
        let e = compile_source("workflow w { task a { } task a { } }").unwrap_err();
        assert!(e.message.contains("declared twice"), "{e}");
        let e = compile_source("workflow w on summit { task a { } }").unwrap_err();
        assert!(e.message.contains("unknown machine"), "{e}");
        let e = compile_source("workflow w { task a { after b } task b { after a } }").unwrap_err();
        assert!(e.message.contains("invalid workflow"), "{e}");
        // Backstop guards for values the parser lets through for the
        // linter's benefit.
        let e = compile_source("workflow w { task a[0] { } }").unwrap_err();
        assert!(e.message.contains("at least 1"), "{e}");
        let e = compile_source("workflow w { task a { compute 1GFLOP eff 2 } }").unwrap_err();
        assert!(e.message.contains("eff must be"), "{e}");
    }

    #[test]
    fn compile_errors_carry_spans() {
        let e = compile_source("workflow w {\n  task b {\n    after ghost\n  }\n}").unwrap_err();
        assert_eq!((e.line, e.col), (3, 11));
        let e = compile_source("workflow w on summit {\n  task a { }\n}").unwrap_err();
        assert_eq!((e.line, e.col), (1, 15));
    }

    #[test]
    fn distributions_lower_into_the_spec_side_table() {
        let c = compile_source(
            "workflow w on pm-cpu { task a[2] { nodes 1 \
             overhead setup uniform(4s, 6s) \
             compute 1GFLOPS \
             overhead run lognormal(100s, 0.3) } }",
        )
        .unwrap();
        // Every replica carries the same side-table; only the two
        // distribution-bearing phases appear, keyed by phase index.
        for t in &c.spec.tasks {
            assert_eq!(t.dists.len(), 2);
            assert_eq!(t.dists[0].phase, 0);
            assert_eq!(
                t.dists[0].dist,
                wrm_core::Dist::Uniform { lo: 4.0, hi: 6.0 }
            );
            assert_eq!(t.dists[1].phase, 2);
        }
        // The nominal spec is deterministic: phase 0 carries the mean.
        match &c.spec.tasks[0].phases[0] {
            Phase::Overhead { seconds, .. } => assert_eq!(*seconds, 5.0),
            other => panic!("expected overhead, got {other:?}"),
        }
        // A point-mass distribution is dropped from the side-table.
        let c = compile_source("workflow w { task a { overhead s uniform(5s, 5s) } }").unwrap();
        assert!(c.spec.tasks[0].dists.is_empty());
    }

    #[test]
    fn invalid_distributions_are_rejected_with_spans() {
        let e = compile_source("workflow w { task a {\n  compute lognormal(1PFLOPS, -0.5)\n} }")
            .unwrap_err();
        assert!(e.message.contains("invalid distribution"), "{e}");
        assert!(e.message.contains("sigma"), "{e}");
        assert_eq!(e.line, 2);
        let e = compile_source("workflow w { task a { node_bytes hbm empirical() } }").unwrap_err();
        assert!(e.message.contains("invalid distribution"), "{e}");
    }

    #[test]
    fn compute_phases_aggregate_into_characterization() {
        let c = compile_source(
            "workflow bgw on pm-gpu { \
             task e { nodes 64 compute 1164PFLOPS } \
             task s { nodes 64 compute 3226PFLOPS after e } }",
        )
        .unwrap();
        let wf = c.characterization().unwrap();
        let w = &wf.node_volumes[ids::COMPUTE];
        assert!((w.magnitude() - 4390e15 / 64.0).abs() < 1e6);
        let model = wrm_core::RooflineModel::build(&c.machine.unwrap(), &wf).unwrap();
        assert_eq!(model.parallelism_wall, 28);
    }
}

#[cfg(test)]
mod machine_tests {
    use super::*;
    use wrm_sim::{simulate, Scenario};

    const CUSTOM: &str = r#"
machine frontier-lite {
  nodes 96
  node compute 20TFLOPS
  node dram 400GB/s
  system fs 500GB/s
  system_per_node net 25GB/s
  system ext 10GB/s
}
workflow w on frontier-lite {
  task a[4] { nodes 8 compute 1PFLOPS eff 0.5 system_bytes fs 1TB }
}
"#;

    #[test]
    fn custom_machine_compiles_and_simulates() {
        let c = compile_source(CUSTOM).unwrap();
        let m = c.machine.clone().unwrap();
        assert_eq!(m.name, "frontier-lite");
        assert_eq!(m.total_nodes, 96);
        assert!(
            (m.node_resource("compute")
                .unwrap()
                .peak_per_node
                .magnitude()
                - 2e13)
                .abs()
                < 1.0
        );
        assert!((m.system_resource("fs").unwrap().peak.get() - 5e11).abs() < 1.0);
        assert_eq!(
            m.system_resource("net").unwrap().scaling,
            wrm_core::SystemScaling::PerNodeInUse
        );
        // End to end: simulate and model on the custom machine.
        let r = simulate(&Scenario::new(m.clone(), c.spec.clone())).unwrap();
        // compute: 1 PF / (8 x 20 TF x 0.5) = 12.5 s; fs: 4 TB shared at
        // 500 GB/s = 8 s overlapped across the four tasks.
        assert!((r.makespan - 20.5).abs() < 0.1, "makespan {}", r.makespan);
        let model = wrm_core::RooflineModel::build(&m, &c.characterization().unwrap()).unwrap();
        assert_eq!(model.parallelism_wall, 12);
    }

    #[test]
    fn custom_machine_shadows_presets_and_errors_are_caught() {
        // A machine that redefines a preset name is used instead.
        let src = r#"
machine pm-gpu { nodes 10 node compute 1TFLOPS }
workflow w on pm-gpu { task a { nodes 1 compute 1GFLOP } }
"#;
        let c = compile_source(src).unwrap();
        assert_eq!(c.machine.unwrap().total_nodes, 10);

        // Invalid machine bodies are rejected with context.
        let bad = "machine m { nodes 0 } workflow w on m { task a { } }";
        let e = compile_source(bad).unwrap_err();
        assert!(e.message.contains("machine `m`"), "{e}");

        let bad = "machine m { node compute 5GB } workflow w on m { task a { } }";
        let e = compile_source(bad).unwrap_err();
        assert!(e.message.contains("expected a rate"), "{e}");

        let bad = "machine m { system fs 5TFLOPS } workflow w on m { task a { } }";
        let e = compile_source(bad).unwrap_err();
        assert!(e.message.contains("bandwidths"), "{e}");

        let bad = "machine m { warp 9 } workflow w on m { task a { } }";
        let e = compile_source(bad).unwrap_err();
        assert!(e.message.contains("unknown machine statement"), "{e}");
    }
}

#[cfg(test)]
mod chain_tests {
    use super::*;
    use wrm_sim::{simulate, Scenario};

    #[test]
    fn chained_replicas_serialize() {
        let c = compile_source(
            "workflow w on pm-cpu { task iter[5] chain { nodes 1 overhead step 10s } }",
        )
        .unwrap();
        // Structural width is 1: the chain is serial.
        assert_eq!(c.parallel_tasks, 1.0);
        assert_eq!(c.total_tasks, 5.0);
        let r = simulate(&Scenario::new(c.machine.clone().unwrap(), c.spec.clone())).unwrap();
        assert!((r.makespan - 50.0).abs() < 1e-9, "makespan {}", r.makespan);
        // Without `chain`, the bag runs in parallel.
        let c =
            compile_source("workflow w on pm-cpu { task iter[5] { nodes 1 overhead step 10s } }")
                .unwrap();
        assert_eq!(c.parallel_tasks, 5.0);
        let r = simulate(&Scenario::new(c.machine.clone().unwrap(), c.spec.clone())).unwrap();
        assert!((r.makespan - 10.0).abs() < 1e-9);
    }
}
