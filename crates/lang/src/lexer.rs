//! Lexer: source text -> tokens.
//!
//! Numbers accept decimal-SI unit suffixes, case-insensitive:
//!
//! * bytes: `B KB MB GB TB PB`
//! * rates: `B/s KB/s MB/s GB/s TB/s`
//! * flops: `FLOP GFLOP TFLOP PFLOP` (plural `...S` accepted)
//! * time:  `ms s min h`
//!
//! `#` starts a line comment. Identifiers are
//! `[A-Za-z_][A-Za-z0-9_.-]*`.

use crate::token::{LangError, Token, TokenKind, Unit};

fn unit_of(suffix: &str) -> Option<(f64, Unit)> {
    let s = suffix.to_ascii_lowercase();
    let (body, rate) = match s.strip_suffix("/s") {
        Some(b) => (b.to_owned(), true),
        None => (s.clone(), false),
    };
    let bytes = |scale: f64| {
        Some(if rate {
            (scale, Unit::BytesPerSec)
        } else {
            (scale, Unit::Bytes)
        })
    };
    match body.as_str() {
        "b" => bytes(1.0),
        "kb" => bytes(1e3),
        "mb" => bytes(1e6),
        "gb" => bytes(1e9),
        "tb" => bytes(1e12),
        "pb" => bytes(1e15),
        _ if rate => None,
        "flop" | "flops" => Some((1.0, Unit::Flops)),
        "kflop" | "kflops" => Some((1e3, Unit::Flops)),
        "mflop" | "mflops" => Some((1e6, Unit::Flops)),
        "gflop" | "gflops" => Some((1e9, Unit::Flops)),
        "tflop" | "tflops" => Some((1e12, Unit::Flops)),
        "pflop" | "pflops" => Some((1e15, Unit::Flops)),
        "ms" => Some((1e-3, Unit::Seconds)),
        "s" | "sec" | "secs" => Some((1.0, Unit::Seconds)),
        "min" => Some((60.0, Unit::Seconds)),
        "h" | "hr" | "hrs" => Some((3600.0, Unit::Seconds)),
        _ => None,
    }
}

/// Tokenizes `source`.
pub fn lex(source: &str) -> Result<Vec<Token>, LangError> {
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let mut offset = 0usize;
    let mut chars = source.chars().peekable();

    macro_rules! bump {
        ($c:expr) => {{
            offset += $c.len_utf8();
            if $c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }};
    }

    while let Some(&c) = chars.peek() {
        let (tline, tcol, tstart) = (line, col, offset);
        match c {
            ' ' | '\t' | '\r' | '\n' | ',' | ';' => {
                chars.next();
                bump!(c);
            }
            '#' => {
                // Comment to end of line.
                while let Some(&c2) = chars.peek() {
                    chars.next();
                    bump!(c2);
                    if c2 == '\n' {
                        break;
                    }
                }
            }
            '{' => {
                chars.next();
                bump!(c);
                tokens.push(Token {
                    kind: TokenKind::LBrace,
                    line: tline,
                    col: tcol,
                    offset: tstart,
                    len: offset - tstart,
                });
            }
            '}' => {
                chars.next();
                bump!(c);
                tokens.push(Token {
                    kind: TokenKind::RBrace,
                    line: tline,
                    col: tcol,
                    offset: tstart,
                    len: offset - tstart,
                });
            }
            '[' => {
                chars.next();
                bump!(c);
                tokens.push(Token {
                    kind: TokenKind::LBracket,
                    line: tline,
                    col: tcol,
                    offset: tstart,
                    len: offset - tstart,
                });
            }
            ']' => {
                chars.next();
                bump!(c);
                tokens.push(Token {
                    kind: TokenKind::RBracket,
                    line: tline,
                    col: tcol,
                    offset: tstart,
                    len: offset - tstart,
                });
            }
            '(' => {
                chars.next();
                bump!(c);
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    line: tline,
                    col: tcol,
                    offset: tstart,
                    len: offset - tstart,
                });
            }
            ')' => {
                chars.next();
                bump!(c);
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    line: tline,
                    col: tcol,
                    offset: tstart,
                    len: offset - tstart,
                });
            }
            '0'..='9' | '.' | '-' => {
                let mut num = String::new();
                if c == '-' {
                    // A leading minus starts a negative number (`-` in
                    // the middle of an identifier is consumed by the
                    // identifier arm below). The value is almost always
                    // a lint error — the lexer stays permissive so the
                    // linter can point at it.
                    num.push('-');
                    chars.next();
                    bump!(c);
                    match chars.peek() {
                        Some(&d) if d.is_ascii_digit() || d == '.' => {}
                        _ => return Err(LangError::new("unexpected character `-`", tline, tcol)),
                    }
                }
                while let Some(&c2) = chars.peek() {
                    if c2.is_ascii_digit()
                        || c2 == '.'
                        || c2 == 'e'
                        || c2 == 'E'
                        || ((c2 == '+' || c2 == '-')
                            && matches!(num.chars().last(), Some('e') | Some('E')))
                    {
                        num.push(c2);
                        chars.next();
                        bump!(c2);
                    } else {
                        break;
                    }
                }
                // An exponent-less trailing 'e' actually starts a suffix
                // (e.g. "5e" is invalid anyway; "5" + "GB" is typical).
                let value: f64 = num
                    .parse()
                    .map_err(|_| LangError::new(format!("invalid number `{num}`"), tline, tcol))?;
                // Optional unit suffix, directly attached.
                let mut suffix = String::new();
                while let Some(&c2) = chars.peek() {
                    if c2.is_ascii_alphabetic() || c2 == '/' {
                        suffix.push(c2);
                        chars.next();
                        bump!(c2);
                    } else {
                        break;
                    }
                }
                let kind = if suffix.is_empty() {
                    TokenKind::Number { value, unit: None }
                } else {
                    match unit_of(&suffix) {
                        Some((scale, unit)) => TokenKind::Number {
                            value: value * scale,
                            unit: Some(unit),
                        },
                        None => {
                            return Err(LangError::new(
                                format!("unknown unit suffix `{suffix}`"),
                                tline,
                                tcol,
                            ))
                        }
                    }
                };
                tokens.push(Token {
                    kind,
                    line: tline,
                    col: tcol,
                    offset: tstart,
                    len: offset - tstart,
                });
            }
            c2 if c2.is_ascii_alphabetic() || c2 == '_' => {
                let mut ident = String::new();
                while let Some(&c3) = chars.peek() {
                    if c3.is_ascii_alphanumeric() || c3 == '_' || c3 == '.' || c3 == '-' {
                        ident.push(c3);
                        chars.next();
                        bump!(c3);
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(ident),
                    line: tline,
                    col: tcol,
                    offset: tstart,
                    len: offset - tstart,
                });
            }
            other => {
                return Err(LangError::new(
                    format!("unexpected character `{other}`"),
                    tline,
                    tcol,
                ));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        col,
        offset,
        len: 0,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        let k = kinds("workflow lcls { task a[5] }");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("workflow".into()),
                TokenKind::Ident("lcls".into()),
                TokenKind::LBrace,
                TokenKind::Ident("task".into()),
                TokenKind::Ident("a".into()),
                TokenKind::LBracket,
                TokenKind::Number {
                    value: 5.0,
                    unit: None
                },
                TokenKind::RBracket,
                TokenKind::RBrace,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn units_normalize_to_base() {
        let k = kinds("1TB 32GB 100GB/s 9.7TFLOPS 600s 10min 0.5h 3ms");
        let vals: Vec<(f64, Option<Unit>)> = k
            .into_iter()
            .filter_map(|t| match t {
                TokenKind::Number { value, unit } => Some((value, unit)),
                _ => None,
            })
            .collect();
        assert_eq!(vals[0], (1e12, Some(Unit::Bytes)));
        assert_eq!(vals[1], (32e9, Some(Unit::Bytes)));
        assert_eq!(vals[2], (100e9, Some(Unit::BytesPerSec)));
        assert_eq!(vals[3], (9.7e12, Some(Unit::Flops)));
        assert_eq!(vals[4], (600.0, Some(Unit::Seconds)));
        assert_eq!(vals[5], (600.0, Some(Unit::Seconds)));
        assert_eq!(vals[6], (1800.0, Some(Unit::Seconds)));
        assert_eq!(vals[7], (0.003, Some(Unit::Seconds)));
    }

    #[test]
    fn comments_and_separators_are_skipped() {
        let k = kinds("a # a comment with { } [ ] 5TB\nb; c, d");
        assert_eq!(k.len(), 5); // a b c d Eof
    }

    #[test]
    fn scientific_notation() {
        let k = kinds("1.5e9 2e-3s");
        assert_eq!(
            k[0],
            TokenKind::Number {
                value: 1.5e9,
                unit: None
            }
        );
        assert_eq!(
            k[1],
            TokenKind::Number {
                value: 0.002,
                unit: Some(Unit::Seconds)
            }
        );
    }

    #[test]
    fn errors_carry_positions() {
        let err = lex("task a\n  nodes 5qq").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown unit suffix"));
        let err = lex("a ? b").unwrap_err();
        assert!(err.message.contains("unexpected character"));
        let err = lex("1.2.3").unwrap_err();
        assert!(err.message.contains("invalid number"));
    }

    #[test]
    fn byte_ranges_slice_back_to_the_source_text() {
        let src = "workflow lcls {\n  task a[5] nodes 32\n}";
        let toks = lex(src).unwrap();
        for t in &toks {
            let text = &src[t.offset..t.end_offset()];
            match &t.kind {
                TokenKind::Ident(s) => assert_eq!(text, s),
                TokenKind::Number { .. } => assert!(text == "5" || text == "32"),
                TokenKind::LBrace => assert_eq!(text, "{"),
                TokenKind::RBrace => assert_eq!(text, "}"),
                TokenKind::LBracket => assert_eq!(text, "["),
                TokenKind::RBracket => assert_eq!(text, "]"),
                TokenKind::LParen => assert_eq!(text, "("),
                TokenKind::RParen => assert_eq!(text, ")"),
                TokenKind::Eof => {
                    assert_eq!(t.offset, src.len());
                    assert_eq!(t.len, 0);
                }
            }
        }
        // Unit suffixes are part of the number token's range.
        let toks = lex("cap 1.5GB/s").unwrap();
        assert_eq!(
            &"cap 1.5GB/s"[toks[1].offset..toks[1].end_offset()],
            "1.5GB/s"
        );
    }

    #[test]
    fn parens_lex_as_tokens_with_comma_separators() {
        // Distribution calls: commas are separators, parens are tokens.
        let k = kinds("lognormal(120s, 0.3)");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("lognormal".into()),
                TokenKind::LParen,
                TokenKind::Number {
                    value: 120.0,
                    unit: Some(Unit::Seconds)
                },
                TokenKind::Number {
                    value: 0.3,
                    unit: None
                },
                TokenKind::RParen,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn negative_numbers_lex_with_optional_units() {
        let k = kinds("-0.5 -3s");
        assert_eq!(
            k[0],
            TokenKind::Number {
                value: -0.5,
                unit: None
            }
        );
        assert_eq!(
            k[1],
            TokenKind::Number {
                value: -3.0,
                unit: Some(Unit::Seconds)
            }
        );
        // A bare minus is still rejected.
        let err = lex("a - b").unwrap_err();
        assert!(err.message.contains("unexpected character `-`"));
    }

    #[test]
    fn identifiers_allow_dots_and_dashes() {
        let k = kinds("pm-gpu cori_hsw ids.fs");
        assert_eq!(k[0], TokenKind::Ident("pm-gpu".into()));
        assert_eq!(k[1], TokenKind::Ident("cori_hsw".into()));
        assert_eq!(k[2], TokenKind::Ident("ids.fs".into()));
    }
}
