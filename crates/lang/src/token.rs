//! Tokens for the workflow description language (WDL-lite).

use std::fmt;

/// A token with its source position (1-based line/column) and byte
/// range.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
    /// Byte offset of the token start.
    pub offset: usize,
    /// Byte length of the token text (0 for Eof).
    pub len: usize,
}

impl Token {
    /// One past the last byte of the token text.
    pub fn end_offset(&self) -> usize {
        self.offset + self.len
    }
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (`workflow`, `task`, `nodes`, resource ids).
    Ident(String),
    /// A number with an optional unit suffix, normalized to base units:
    /// bytes, flops, seconds, or bytes/s. A bare number has `unit: None`.
    Number {
        /// Normalized value (base units when a unit was given).
        value: f64,
        /// The unit class, when a suffix was present.
        unit: Option<Unit>,
    },
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `per` keyword used in throughput expressions (also an Ident, but
    /// the lexer keeps it as Ident; listed here for documentation only).
    /// End of input.
    Eof,
}

/// Unit classes a number suffix can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Data volume (bytes).
    Bytes,
    /// Compute volume (FLOPs).
    Flops,
    /// Duration (seconds).
    Seconds,
    /// Data rate (bytes/second).
    BytesPerSec,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Number { value, unit } => match unit {
                Some(u) => write!(f, "number {value} ({u:?})"),
                None => write!(f, "number {value}"),
            },
            TokenKind::LBrace => f.write_str("`{`"),
            TokenKind::RBrace => f.write_str("`}`"),
            TokenKind::LBracket => f.write_str("`[`"),
            TokenKind::RBracket => f.write_str("`]`"),
            TokenKind::LParen => f.write_str("`(`"),
            TokenKind::RParen => f.write_str("`)`"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

/// A language-level error with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct LangError {
    /// Human-readable message.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl LangError {
    /// Creates an error at a position.
    pub fn new(message: impl Into<String>, line: usize, col: usize) -> Self {
        Self {
            message: message.into(),
            line,
            col,
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LangError {}
