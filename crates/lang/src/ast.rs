//! Abstract syntax for the workflow description language.

/// A 1-based source position (line and column), matching the lexer's
/// numbering, plus the byte range of the spanned token(s) so tooling
/// can splice machine-applicable edits into the source. `0:0` means
/// "no recorded position" (e.g. synthesized nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    /// 1-based line number (0 = unknown).
    pub line: usize,
    /// 1-based column number.
    pub col: usize,
    /// Byte offset of the start of the spanned text.
    pub offset: usize,
    /// Byte length of the spanned text (0 when only a position is
    /// known).
    pub len: usize,
}

impl Span {
    /// A span at `line:col` with no byte range.
    pub fn new(line: usize, col: usize) -> Self {
        Self {
            line,
            col,
            offset: 0,
            len: 0,
        }
    }

    /// A span at `line:col` covering `len` bytes starting at `offset`.
    pub fn with_range(line: usize, col: usize, offset: usize, len: usize) -> Self {
        Self {
            line,
            col,
            offset,
            len,
        }
    }

    /// True when the span carries a real position.
    pub fn is_known(&self) -> bool {
        self.line > 0
    }

    /// One past the last byte of the spanned text.
    pub fn end_offset(&self) -> usize {
        self.offset + self.len
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A parsed workflow file.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowAst {
    /// Workflow name.
    pub name: String,
    /// Position of the workflow name.
    pub name_span: Span,
    /// Optional machine short-name (`on pm-gpu` or a custom machine
    /// declared in the same file).
    pub machine: Option<String>,
    /// Position of the `on <machine>` reference (unknown when absent).
    pub machine_span: Span,
    /// Optional targets.
    pub targets: TargetsAst,
    /// Task declarations in source order.
    pub tasks: Vec<TaskAst>,
    /// Custom machine declarations preceding the workflow.
    pub machines: Vec<MachineAst>,
}

/// A custom machine declaration.
///
/// ```text
/// machine mycluster {
///   nodes 128
///   node compute 10TFLOPS      # flops unit => FLOP/s peak per node
///   node dram 200GB/s
///   system fs 1TB/s            # fixed aggregate
///   system_per_node net 25GB/s # scales with nodes in use
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MachineAst {
    /// Machine name (referenced by `on <name>`).
    pub name: String,
    /// Position of the machine name.
    pub span: Span,
    /// Total node count.
    pub nodes: u64,
    /// Node-local peaks: `(id, peak, is_flops)` where peak is in
    /// base-units/second.
    pub node_resources: Vec<(String, f64, bool)>,
    /// System peaks: `(id, peak bytes/s, per_node_in_use)`.
    pub system_resources: Vec<(String, f64, bool)>,
}

/// Parsed targets.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TargetsAst {
    /// Target makespan in seconds.
    pub makespan: Option<f64>,
    /// Position of the makespan value.
    pub makespan_span: Span,
    /// Target throughput in tasks/s.
    pub throughput: Option<f64>,
    /// Position of the throughput value.
    pub throughput_span: Span,
}

/// One task declaration (possibly replicated: `task analyze[5]`).
#[derive(Debug, Clone, PartialEq)]
pub struct TaskAst {
    /// Base name.
    pub name: String,
    /// Position of the task name.
    pub span: Span,
    /// Replica count (1 when no bracket was given). The parser accepts
    /// 0 so the linter can flag it; the compiler rejects it.
    pub count: usize,
    /// Position of the replica count (the task name when no bracket).
    pub count_span: Span,
    /// Serialize the replicas (`task iter[40] chain { ... }`): replica
    /// `i` depends on replica `i-1`.
    pub chain: bool,
    /// Node requirement (defaults to 1).
    pub nodes: u64,
    /// Position of the `nodes` value (the task name when defaulted).
    pub nodes_span: Span,
    /// Phase statements in order.
    pub phases: Vec<PhaseAst>,
    /// Dependencies.
    pub after: Vec<AfterRef>,
}

/// A distribution call attached to a phase quantity, e.g.
/// `compute lognormal(4PFLOPS, 0.3)`. The quantity parameters carry the
/// phase's unit; `sigma` and empirical weights are unit-less. The parser
/// accepts any parameter values (the linter flags invalid ones as
/// `E011`, the compiler backstops); the *nominal* quantity lowered into
/// the plain phase field is the distribution mean.
#[derive(Debug, Clone, PartialEq)]
pub enum DistAst {
    /// `uniform(lo, hi)`
    Uniform {
        /// Inclusive lower bound (phase units).
        lo: f64,
        /// Inclusive upper bound (phase units).
        hi: f64,
        /// Position of the distribution keyword.
        span: Span,
    },
    /// `lognormal(median, sigma)`
    LogNormal {
        /// Median (phase units).
        median: f64,
        /// Sigma of the underlying normal (unit-less).
        sigma: f64,
        /// Position of the distribution keyword.
        span: Span,
    },
    /// `triangular(lo, mode, hi)`
    Triangular {
        /// Inclusive lower bound (phase units).
        lo: f64,
        /// Most likely value (phase units).
        mode: f64,
        /// Inclusive upper bound (phase units).
        hi: f64,
        /// Position of the distribution keyword.
        span: Span,
    },
    /// `empirical(v1 w1 v2 w2 ...)` — weighted samples.
    Empirical {
        /// `(value, weight)` pairs; values carry the phase unit.
        samples: Vec<(f64, f64)>,
        /// Position of the distribution keyword.
        span: Span,
    },
}

impl DistAst {
    /// Position of the distribution keyword.
    pub fn span(&self) -> Span {
        match self {
            DistAst::Uniform { span, .. }
            | DistAst::LogNormal { span, .. }
            | DistAst::Triangular { span, .. }
            | DistAst::Empirical { span, .. } => *span,
        }
    }

    /// The equivalent core distribution (spans dropped).
    pub fn to_dist(&self) -> wrm_core::Dist {
        match self {
            DistAst::Uniform { lo, hi, .. } => wrm_core::Dist::Uniform { lo: *lo, hi: *hi },
            DistAst::LogNormal { median, sigma, .. } => wrm_core::Dist::LogNormal {
                median: *median,
                sigma: *sigma,
            },
            DistAst::Triangular { lo, mode, hi, .. } => wrm_core::Dist::Triangular {
                lo: *lo,
                mode: *mode,
                hi: *hi,
            },
            DistAst::Empirical { samples, .. } => wrm_core::Dist::Empirical {
                samples: samples.clone(),
            },
        }
    }
}

/// One phase statement.
#[derive(Debug, Clone, PartialEq)]
pub enum PhaseAst {
    /// `compute 69PFLOPS [eff 0.4]`
    Compute {
        /// Total FLOPs.
        flops: f64,
        /// Efficiency; the parser accepts any value, the linter and
        /// compiler require (0,1].
        eff: f64,
        /// Position of the phase keyword.
        span: Span,
        /// Position of the `eff` value (unknown when defaulted).
        eff_span: Span,
        /// Monte-Carlo distribution of `flops` (None = point value).
        dist: Option<DistAst>,
    },
    /// `node_bytes hbm 80GB [eff 0.9]`
    NodeBytes {
        /// Node resource id.
        resource: String,
        /// Total bytes.
        bytes: f64,
        /// Efficiency; see [`PhaseAst::Compute::eff`].
        eff: f64,
        /// Position of the phase keyword.
        span: Span,
        /// Position of the `eff` value (unknown when defaulted).
        eff_span: Span,
        /// Monte-Carlo distribution of `bytes` (None = point value).
        dist: Option<DistAst>,
    },
    /// `system_bytes ext 1TB [cap 1GB/s]`
    SystemBytes {
        /// System resource id.
        resource: String,
        /// Total bytes.
        bytes: f64,
        /// Optional per-flow cap (bytes/s).
        cap: Option<f64>,
        /// Position of the phase keyword.
        span: Span,
        /// Monte-Carlo distribution of `bytes` (None = point value).
        dist: Option<DistAst>,
    },
    /// `overhead python 5.2s`
    Overhead {
        /// Label.
        label: String,
        /// Seconds.
        seconds: f64,
        /// Position of the phase keyword.
        span: Span,
        /// Monte-Carlo distribution of `seconds` (None = point value).
        dist: Option<DistAst>,
    },
}

impl PhaseAst {
    /// Position of the phase keyword.
    pub fn span(&self) -> Span {
        match self {
            PhaseAst::Compute { span, .. }
            | PhaseAst::NodeBytes { span, .. }
            | PhaseAst::SystemBytes { span, .. }
            | PhaseAst::Overhead { span, .. } => *span,
        }
    }

    /// The phase's distribution call, if one was written.
    pub fn dist(&self) -> Option<&DistAst> {
        match self {
            PhaseAst::Compute { dist, .. }
            | PhaseAst::NodeBytes { dist, .. }
            | PhaseAst::SystemBytes { dist, .. }
            | PhaseAst::Overhead { dist, .. } => dist.as_ref(),
        }
    }
}

/// A dependency reference: a base name, optionally one replica index.
#[derive(Debug, Clone, PartialEq)]
pub struct AfterRef {
    /// Referenced task base name.
    pub name: String,
    /// Specific replica (None = all replicas of that name).
    pub index: Option<usize>,
    /// Position of the referenced name.
    pub span: Span,
    /// Byte range of the whole statement (`after name[i]`), so fix-its
    /// can remove the edge.
    pub stmt_span: Span,
}
