//! Abstract syntax for the workflow description language.

/// A parsed workflow file.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowAst {
    /// Workflow name.
    pub name: String,
    /// Optional machine short-name (`on pm-gpu` or a custom machine
    /// declared in the same file).
    pub machine: Option<String>,
    /// Optional targets.
    pub targets: TargetsAst,
    /// Task declarations in source order.
    pub tasks: Vec<TaskAst>,
    /// Custom machine declarations preceding the workflow.
    pub machines: Vec<MachineAst>,
}

/// A custom machine declaration.
///
/// ```text
/// machine mycluster {
///   nodes 128
///   node compute 10TFLOPS      # flops unit => FLOP/s peak per node
///   node dram 200GB/s
///   system fs 1TB/s            # fixed aggregate
///   system_per_node net 25GB/s # scales with nodes in use
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MachineAst {
    /// Machine name (referenced by `on <name>`).
    pub name: String,
    /// Total node count.
    pub nodes: u64,
    /// Node-local peaks: `(id, peak, is_flops)` where peak is in
    /// base-units/second.
    pub node_resources: Vec<(String, f64, bool)>,
    /// System peaks: `(id, peak bytes/s, per_node_in_use)`.
    pub system_resources: Vec<(String, f64, bool)>,
}

/// Parsed targets.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TargetsAst {
    /// Target makespan in seconds.
    pub makespan: Option<f64>,
    /// Target throughput in tasks/s.
    pub throughput: Option<f64>,
}

/// One task declaration (possibly replicated: `task analyze[5]`).
#[derive(Debug, Clone, PartialEq)]
pub struct TaskAst {
    /// Base name.
    pub name: String,
    /// Replica count (1 when no bracket was given).
    pub count: usize,
    /// Serialize the replicas (`task iter[40] chain { ... }`): replica
    /// `i` depends on replica `i-1`.
    pub chain: bool,
    /// Node requirement (defaults to 1).
    pub nodes: u64,
    /// Phase statements in order.
    pub phases: Vec<PhaseAst>,
    /// Dependencies.
    pub after: Vec<AfterRef>,
}

/// One phase statement.
#[derive(Debug, Clone, PartialEq)]
pub enum PhaseAst {
    /// `compute 69PFLOPS [eff 0.4]`
    Compute {
        /// Total FLOPs.
        flops: f64,
        /// Efficiency in (0,1].
        eff: f64,
    },
    /// `node_bytes hbm 80GB [eff 0.9]`
    NodeBytes {
        /// Node resource id.
        resource: String,
        /// Total bytes.
        bytes: f64,
        /// Efficiency in (0,1].
        eff: f64,
    },
    /// `system_bytes ext 1TB [cap 1GB/s]`
    SystemBytes {
        /// System resource id.
        resource: String,
        /// Total bytes.
        bytes: f64,
        /// Optional per-flow cap (bytes/s).
        cap: Option<f64>,
    },
    /// `overhead python 5.2s`
    Overhead {
        /// Label.
        label: String,
        /// Seconds.
        seconds: f64,
    },
}

/// A dependency reference: a base name, optionally one replica index.
#[derive(Debug, Clone, PartialEq)]
pub struct AfterRef {
    /// Referenced task base name.
    pub name: String,
    /// Specific replica (None = all replicas of that name).
    pub index: Option<usize>,
}
