//! # wrm-lang — a tiny workflow description language
//!
//! The paper obtains a workflow's structural metrics (task counts,
//! parallelism, node requirements) from its description — sbatch scripts
//! or WDL. This crate provides the equivalent for this reproduction: a
//! small declarative language that compiles to a simulator spec
//! (`wrm_sim::WorkflowSpec`), a planning DAG, and a roofline
//! characterization.
//!
//! ```text
//! workflow lcls on cori-hsw {
//!   targets { makespan 10min  throughput 6 per 600s }
//!   task analyze[5] {
//!     nodes 32
//!     system_bytes ext 1TB cap 1GB/s
//!     node_bytes dram 1024GB
//!   }
//!   task merge { nodes 1 system_bytes bb 5GB after analyze }
//! }
//! ```
//!
//! ```
//! let compiled = wrm_lang::compile_source(r#"
//!     workflow demo on pm-gpu {
//!       task step[4] { nodes 64 compute 10PFLOPS }
//!     }"#).unwrap();
//! assert_eq!(compiled.total_tasks, 4.0);
//! assert_eq!(compiled.parallel_tasks, 4.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod compile;
pub mod lexer;
pub mod parser;
pub mod token;

pub use ast::{Span, WorkflowAst};
pub use compile::{compile, compile_source, Compiled};
pub use parser::parse;
pub use token::LangError;
