//! Recursive-descent parser: tokens -> [`WorkflowAst`].
//!
//! Grammar (whitespace/`,`/`;` are separators, `#` comments):
//!
//! ```text
//! file      := machine* "workflow" IDENT ["on" IDENT] "{" item* "}"
//! machine   := "machine" IDENT "{" mstmt* "}"
//! mstmt     := "nodes" INT
//!            | "node" IDENT RATE            (flops- or bytes-per-second)
//!            | "system" IDENT RATE
//!            | "system_per_node" IDENT RATE
//! item      := targets | task
//! targets   := "targets" "{" tstmt* "}"
//! tstmt     := "makespan" TIME
//!            | "throughput" NUMBER ["per" TIME]
//! task      := "task" IDENT ["[" INT "]"] ["chain"] "{" stmt* "}"
//! stmt      := "nodes" INT
//!            | "compute" FLOPS ["eff" NUMBER]
//!            | "node_bytes" IDENT BYTES ["eff" NUMBER]
//!            | "system_bytes" IDENT BYTES ["cap" RATE]
//!            | "overhead" IDENT TIME
//!            | "after" IDENT ["[" INT "]"]
//! ```

use crate::ast::{AfterRef, MachineAst, PhaseAst, TargetsAst, TaskAst, WorkflowAst};
use crate::lexer::lex;
use crate::token::{LangError, Token, TokenKind, Unit};

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> LangError {
        let t = self.peek();
        LangError::new(msg, t.line, t.col)
    }

    fn expect_ident(&mut self) -> Result<String, LangError> {
        match self.next() {
            Token {
                kind: TokenKind::Ident(s),
                ..
            } => Ok(s),
            t => Err(LangError::new(
                format!("expected identifier, found {}", t.kind),
                t.line,
                t.col,
            )),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), LangError> {
        let t = self.next();
        match &t.kind {
            TokenKind::Ident(s) if s == kw => Ok(()),
            other => Err(LangError::new(
                format!("expected `{kw}`, found {other}"),
                t.line,
                t.col,
            )),
        }
    }

    fn expect_token(&mut self, kind: TokenKind) -> Result<(), LangError> {
        let t = self.next();
        if t.kind == kind {
            Ok(())
        } else {
            Err(LangError::new(
                format!("expected {kind}, found {}", t.kind),
                t.line,
                t.col,
            ))
        }
    }

    /// A number whose unit must be `expected` (or unit-less, which is
    /// accepted and taken at face value).
    fn expect_number(&mut self, expected: Option<Unit>, what: &str) -> Result<f64, LangError> {
        let t = self.next();
        match t.kind {
            TokenKind::Number { value, unit } => match (unit, expected) {
                (None, _) => Ok(value),
                (Some(u), Some(e)) if u == e => Ok(value),
                (Some(u), _) => Err(LangError::new(
                    format!("{what}: wrong unit {u:?}, expected {expected:?}"),
                    t.line,
                    t.col,
                )),
            },
            other => Err(LangError::new(
                format!("{what}: expected a number, found {other}"),
                t.line,
                t.col,
            )),
        }
    }

    fn expect_uint(&mut self, what: &str) -> Result<u64, LangError> {
        let t = self.peek().clone();
        let v = self.expect_number(None, what)?;
        if v.fract() != 0.0 || v < 0.0 || v > u64::MAX as f64 {
            return Err(LangError::new(
                format!("{what}: expected a non-negative integer, got {v}"),
                t.line,
                t.col,
            ));
        }
        Ok(v as u64)
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s == kw)
    }

    fn parse_optional_eff(&mut self) -> Result<f64, LangError> {
        if self.peek_keyword("eff") {
            self.next();
            let t = self.peek().clone();
            let v = self.expect_number(None, "eff")?;
            if !(v > 0.0 && v <= 1.0) {
                return Err(LangError::new(
                    format!("eff must be in (0, 1], got {v}"),
                    t.line,
                    t.col,
                ));
            }
            Ok(v)
        } else {
            Ok(1.0)
        }
    }

    fn parse_task(&mut self) -> Result<TaskAst, LangError> {
        let name = self.expect_ident()?;
        let count = if self.peek().kind == TokenKind::LBracket {
            self.next();
            let n = self.expect_uint("replica count")? as usize;
            self.expect_token(TokenKind::RBracket)?;
            if n == 0 {
                return Err(self.err("replica count must be at least 1"));
            }
            n
        } else {
            1
        };
        let chain = if self.peek_keyword("chain") {
            self.next();
            true
        } else {
            false
        };
        self.expect_token(TokenKind::LBrace)?;
        let mut task = TaskAst {
            name,
            count,
            chain,
            nodes: 1,
            phases: Vec::new(),
            after: Vec::new(),
        };
        loop {
            match &self.peek().kind {
                TokenKind::RBrace => {
                    self.next();
                    break;
                }
                TokenKind::Ident(kw) => {
                    let kw = kw.clone();
                    self.next();
                    match kw.as_str() {
                        "nodes" => {
                            task.nodes = self.expect_uint("nodes")?;
                        }
                        "compute" => {
                            let flops = self.expect_number(Some(Unit::Flops), "compute")?;
                            let eff = self.parse_optional_eff()?;
                            task.phases.push(PhaseAst::Compute { flops, eff });
                        }
                        "node_bytes" => {
                            let resource = self.expect_ident()?;
                            let bytes = self.expect_number(Some(Unit::Bytes), "node_bytes")?;
                            let eff = self.parse_optional_eff()?;
                            task.phases.push(PhaseAst::NodeBytes {
                                resource,
                                bytes,
                                eff,
                            });
                        }
                        "system_bytes" => {
                            let resource = self.expect_ident()?;
                            let bytes = self.expect_number(Some(Unit::Bytes), "system_bytes")?;
                            let cap = if self.peek_keyword("cap") {
                                self.next();
                                Some(self.expect_number(Some(Unit::BytesPerSec), "cap")?)
                            } else {
                                None
                            };
                            task.phases.push(PhaseAst::SystemBytes {
                                resource,
                                bytes,
                                cap,
                            });
                        }
                        "overhead" => {
                            let label = self.expect_ident()?;
                            let seconds = self.expect_number(Some(Unit::Seconds), "overhead")?;
                            task.phases.push(PhaseAst::Overhead { label, seconds });
                        }
                        "after" => {
                            let name = self.expect_ident()?;
                            let index = if self.peek().kind == TokenKind::LBracket {
                                self.next();
                                let i = self.expect_uint("replica index")? as usize;
                                self.expect_token(TokenKind::RBracket)?;
                                Some(i)
                            } else {
                                None
                            };
                            task.after.push(AfterRef { name, index });
                        }
                        other => {
                            return Err(self.err(format!(
                                "unknown task statement `{other}` (expected nodes, compute, \
                                 node_bytes, system_bytes, overhead, or after)"
                            )));
                        }
                    }
                }
                other => {
                    return Err(self.err(format!("expected a task statement, found {other}")));
                }
            }
        }
        Ok(task)
    }

    /// A rate: a bytes/s number, or a flops number (interpreted as
    /// FLOP/s). Returns (value, is_flops).
    fn expect_rate(&mut self, what: &str) -> Result<(f64, bool), LangError> {
        let t = self.next();
        match t.kind {
            TokenKind::Number { value, unit } => match unit {
                Some(Unit::BytesPerSec) => Ok((value, false)),
                Some(Unit::Flops) => Ok((value, true)),
                None => Ok((value, false)),
                Some(other) => Err(LangError::new(
                    format!("{what}: expected a rate (B/s or FLOPS), got {other:?}"),
                    t.line,
                    t.col,
                )),
            },
            other => Err(LangError::new(
                format!("{what}: expected a rate, found {other}"),
                t.line,
                t.col,
            )),
        }
    }

    fn parse_machine(&mut self) -> Result<MachineAst, LangError> {
        let name = self.expect_ident()?;
        self.expect_token(TokenKind::LBrace)?;
        let mut m = MachineAst {
            name,
            nodes: 1,
            node_resources: Vec::new(),
            system_resources: Vec::new(),
        };
        loop {
            match &self.peek().kind {
                TokenKind::RBrace => {
                    self.next();
                    break;
                }
                TokenKind::Ident(kw) => {
                    let kw = kw.clone();
                    self.next();
                    match kw.as_str() {
                        "nodes" => m.nodes = self.expect_uint("nodes")?,
                        "node" => {
                            let id = self.expect_ident()?;
                            let (rate, is_flops) = self.expect_rate("node peak")?;
                            m.node_resources.push((id, rate, is_flops));
                        }
                        "system" => {
                            let id = self.expect_ident()?;
                            let (rate, is_flops) = self.expect_rate("system peak")?;
                            if is_flops {
                                return Err(self.err("system peaks are bandwidths (B/s)"));
                            }
                            m.system_resources.push((id, rate, false));
                        }
                        "system_per_node" => {
                            let id = self.expect_ident()?;
                            let (rate, is_flops) = self.expect_rate("system peak")?;
                            if is_flops {
                                return Err(self.err("system peaks are bandwidths (B/s)"));
                            }
                            m.system_resources.push((id, rate, true));
                        }
                        other => {
                            return Err(self.err(format!(
                                "unknown machine statement `{other}` (expected nodes, node,                                  system, or system_per_node)"
                            )));
                        }
                    }
                }
                other => {
                    return Err(self.err(format!(
                        "expected a machine statement, found {other}"
                    )));
                }
            }
        }
        Ok(m)
    }

    fn parse_targets(&mut self) -> Result<TargetsAst, LangError> {
        self.expect_token(TokenKind::LBrace)?;
        let mut t = TargetsAst::default();
        loop {
            match &self.peek().kind {
                TokenKind::RBrace => {
                    self.next();
                    break;
                }
                TokenKind::Ident(kw) if kw == "makespan" => {
                    self.next();
                    t.makespan = Some(self.expect_number(Some(Unit::Seconds), "makespan")?);
                }
                TokenKind::Ident(kw) if kw == "throughput" => {
                    self.next();
                    let n = self.expect_number(None, "throughput")?;
                    if self.peek_keyword("per") {
                        self.next();
                        let per = self.expect_number(Some(Unit::Seconds), "per")?;
                        if per <= 0.0 {
                            return Err(self.err("`per` duration must be positive"));
                        }
                        t.throughput = Some(n / per);
                    } else {
                        t.throughput = Some(n);
                    }
                }
                other => {
                    return Err(self.err(format!(
                        "expected `makespan` or `throughput`, found {other}"
                    )));
                }
            }
        }
        Ok(t)
    }
}

/// Parses a workflow source file.
pub fn parse(source: &str) -> Result<WorkflowAst, LangError> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut machines = Vec::new();
    while p.peek_keyword("machine") {
        p.next();
        machines.push(p.parse_machine()?);
    }
    p.expect_keyword("workflow")?;
    let name = p.expect_ident()?;
    let machine = if p.peek_keyword("on") {
        p.next();
        Some(p.expect_ident()?)
    } else {
        None
    };
    p.expect_token(TokenKind::LBrace)?;
    let mut ast = WorkflowAst {
        name,
        machine,
        targets: TargetsAst::default(),
        tasks: Vec::new(),
        machines,
    };
    loop {
        match &p.peek().kind {
            TokenKind::RBrace => {
                p.next();
                break;
            }
            TokenKind::Ident(kw) if kw == "task" => {
                p.next();
                ast.tasks.push(p.parse_task()?);
            }
            TokenKind::Ident(kw) if kw == "targets" => {
                p.next();
                ast.targets = p.parse_targets()?;
            }
            other => {
                return Err(p.err(format!("expected `task` or `targets`, found {other}")));
            }
        }
    }
    if p.peek().kind != TokenKind::Eof {
        return Err(p.err(format!(
            "unexpected trailing input: {}",
            p.peek().kind
        )));
    }
    Ok(ast)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LCLS: &str = r#"
# The LCLS workflow of paper Fig. 4.
workflow lcls on cori-hsw {
  targets { makespan 10min  throughput 6 per 600s }
  task analyze[5] {
    nodes 32
    system_bytes ext 1TB cap 1GB/s
    node_bytes dram 1024GB
    system_bytes bb 1GB
  }
  task merge {
    nodes 1
    system_bytes bb 5GB
    after analyze
  }
}
"#;

    #[test]
    fn parses_the_lcls_example() {
        let ast = parse(LCLS).unwrap();
        assert_eq!(ast.name, "lcls");
        assert_eq!(ast.machine.as_deref(), Some("cori-hsw"));
        assert_eq!(ast.targets.makespan, Some(600.0));
        assert!((ast.targets.throughput.unwrap() - 0.01).abs() < 1e-12);
        assert_eq!(ast.tasks.len(), 2);
        let analyze = &ast.tasks[0];
        assert_eq!(analyze.count, 5);
        assert_eq!(analyze.nodes, 32);
        assert_eq!(analyze.phases.len(), 3);
        assert_eq!(
            analyze.phases[0],
            PhaseAst::SystemBytes {
                resource: "ext".into(),
                bytes: 1e12,
                cap: Some(1e9)
            }
        );
        let merge = &ast.tasks[1];
        assert_eq!(
            merge.after,
            vec![AfterRef {
                name: "analyze".into(),
                index: None
            }]
        );
    }

    #[test]
    fn parses_compute_and_overhead() {
        let ast = parse(
            "workflow bgw { task e { nodes 64 compute 1164PFLOPS eff 0.39 \
             overhead setup 5s } task s { nodes 64 compute 3226PFLOPS after e } }",
        )
        .unwrap();
        assert_eq!(
            ast.tasks[0].phases[0],
            PhaseAst::Compute {
                flops: 1.164e18,
                eff: 0.39
            }
        );
        assert_eq!(
            ast.tasks[0].phases[1],
            PhaseAst::Overhead {
                label: "setup".into(),
                seconds: 5.0
            }
        );
        assert_eq!(ast.tasks[1].after[0].name, "e");
    }

    #[test]
    fn after_with_index() {
        let ast = parse("workflow w { task a[3] { } task b { after a[1] } }").unwrap();
        assert_eq!(ast.tasks[1].after[0].index, Some(1));
    }

    #[test]
    fn throughput_as_plain_rate() {
        let ast = parse("workflow w { targets { throughput 0.02 } }").unwrap();
        assert_eq!(ast.targets.throughput, Some(0.02));
    }

    #[test]
    fn error_messages_name_the_problem() {
        let e = parse("task a {}").unwrap_err();
        assert!(e.message.contains("expected `workflow`"), "{e}");
        let e = parse("workflow w { task a { nodes 1.5 } }").unwrap_err();
        assert!(e.message.contains("integer"), "{e}");
        let e = parse("workflow w { task a { compute 5GB } }").unwrap_err();
        assert!(e.message.contains("wrong unit"), "{e}");
        let e = parse("workflow w { task a { warp 9 } }").unwrap_err();
        assert!(e.message.contains("unknown task statement"), "{e}");
        let e = parse("workflow w { task a { eff } }").unwrap_err();
        assert!(e.message.contains("unknown task statement"), "{e}");
        let e = parse("workflow w { task a[0] { } }").unwrap_err();
        assert!(e.message.contains("at least 1"), "{e}");
        let e = parse("workflow w { task a { compute 1GFLOP eff 2 } }").unwrap_err();
        assert!(e.message.contains("eff must be"), "{e}");
        let e = parse("workflow w { targets { makespan } }").unwrap_err();
        assert!(e.message.contains("expected a number"), "{e}");
        let e = parse("workflow w { targets { throughput 6 per 0s } }").unwrap_err();
        assert!(e.message.contains("positive"), "{e}");
        let e = parse("workflow w { } trailing").unwrap_err();
        assert!(e.message.contains("trailing"), "{e}");
    }

    #[test]
    fn eof_inside_block_is_an_error() {
        let e = parse("workflow w { task a {").unwrap_err();
        assert!(e.message.contains("expected a task statement"), "{e}");
    }
}
