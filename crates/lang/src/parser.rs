//! Recursive-descent parser: tokens -> [`WorkflowAst`].
//!
//! Grammar (whitespace/`,`/`;` are separators, `#` comments):
//!
//! ```text
//! file      := machine* "workflow" IDENT ["on" IDENT] "{" item* "}"
//! machine   := "machine" IDENT "{" mstmt* "}"
//! mstmt     := "nodes" INT
//!            | "node" IDENT RATE            (flops- or bytes-per-second)
//!            | "system" IDENT RATE
//!            | "system_per_node" IDENT RATE
//! item      := targets | task
//! targets   := "targets" "{" tstmt* "}"
//! tstmt     := "makespan" TIME
//!            | "throughput" NUMBER ["per" TIME]
//! task      := "task" IDENT ["[" INT "]"] ["chain"] "{" stmt* "}"
//! stmt      := "nodes" INT
//!            | "compute" QTY(FLOPS) ["eff" NUMBER]
//!            | "node_bytes" IDENT QTY(BYTES) ["eff" NUMBER]
//!            | "system_bytes" IDENT QTY(BYTES) ["cap" RATE]
//!            | "overhead" IDENT QTY(TIME)
//!            | "after" IDENT ["[" INT "]"]
//! QTY(U)    := U | DIST(U)
//! DIST(U)   := "uniform" "(" U U ")"
//!            | "lognormal" "(" U NUMBER ")"          (median, sigma)
//!            | "triangular" "(" U U U ")"            (lo, mode, hi)
//!            | "empirical" "(" (U NUMBER)* ")"       (value weight ...)
//! ```
//!
//! A `QTY` written as a distribution call lowers its *mean* into the
//! phase's plain quantity (so deterministic analyses are unchanged) and
//! records the distribution on the AST for the Monte-Carlo engine.
//!
//! The parser records a [`Span`] on every AST node so downstream
//! consumers (the linter, the compiler) can anchor diagnostics. It is
//! deliberately permissive about *values* — a replica count of 0 or an
//! efficiency of 2.0 parses fine; the linter flags them (E007/E006) and
//! the compiler rejects them as a backstop.

use crate::ast::{AfterRef, DistAst, MachineAst, PhaseAst, Span, TargetsAst, TaskAst, WorkflowAst};
use crate::lexer::lex;
use crate::token::{LangError, Token, TokenKind, Unit};

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    /// Source position (and byte range) of the next token.
    fn pos_span(&self) -> Span {
        let t = self.peek();
        Span::with_range(t.line, t.col, t.offset, t.len)
    }

    /// One past the last byte of the most recently consumed token.
    fn prev_end(&self) -> usize {
        self.tokens[self.pos.saturating_sub(1)].end_offset()
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> LangError {
        let t = self.peek();
        LangError::new(msg, t.line, t.col)
    }

    fn expect_ident(&mut self) -> Result<String, LangError> {
        match self.next() {
            Token {
                kind: TokenKind::Ident(s),
                ..
            } => Ok(s),
            t => Err(LangError::new(
                format!("expected identifier, found {}", t.kind),
                t.line,
                t.col,
            )),
        }
    }

    /// An identifier plus its source position.
    fn expect_ident_spanned(&mut self) -> Result<(String, Span), LangError> {
        let span = self.pos_span();
        Ok((self.expect_ident()?, span))
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), LangError> {
        let t = self.next();
        match &t.kind {
            TokenKind::Ident(s) if s == kw => Ok(()),
            other => Err(LangError::new(
                format!("expected `{kw}`, found {other}"),
                t.line,
                t.col,
            )),
        }
    }

    fn expect_token(&mut self, kind: TokenKind) -> Result<(), LangError> {
        let t = self.next();
        if t.kind == kind {
            Ok(())
        } else {
            Err(LangError::new(
                format!("expected {kind}, found {}", t.kind),
                t.line,
                t.col,
            ))
        }
    }

    /// A number whose unit must be `expected` (or unit-less, which is
    /// accepted and taken at face value).
    fn expect_number(&mut self, expected: Option<Unit>, what: &str) -> Result<f64, LangError> {
        let t = self.next();
        match t.kind {
            TokenKind::Number { value, unit } => match (unit, expected) {
                (None, _) => Ok(value),
                (Some(u), Some(e)) if u == e => Ok(value),
                (Some(u), _) => Err(LangError::new(
                    format!("{what}: wrong unit {u:?}, expected {expected:?}"),
                    t.line,
                    t.col,
                )),
            },
            other => Err(LangError::new(
                format!("{what}: expected a number, found {other}"),
                t.line,
                t.col,
            )),
        }
    }

    fn expect_uint(&mut self, what: &str) -> Result<u64, LangError> {
        let t = self.peek().clone();
        let v = self.expect_number(None, what)?;
        if v.fract() != 0.0 || v < 0.0 || v > u64::MAX as f64 {
            return Err(LangError::new(
                format!("{what}: expected a non-negative integer, got {v}"),
                t.line,
                t.col,
            ));
        }
        Ok(v as u64)
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s == kw)
    }

    /// A phase quantity: a plain number, or a distribution call
    /// (`uniform`/`lognormal`/`triangular`/`empirical` followed by
    /// `(`). Returns the nominal value — the distribution mean for
    /// calls, so deterministic analyses see the expected workload — and
    /// the parsed distribution. An identifier *not* followed by `(` is
    /// left in place (e.g. a resource that happens to be named
    /// `uniform`).
    fn expect_quantity(
        &mut self,
        unit: Option<Unit>,
        what: &str,
    ) -> Result<(f64, Option<DistAst>), LangError> {
        if let TokenKind::Ident(name) = &self.peek().kind {
            let is_dist = matches!(
                name.as_str(),
                "uniform" | "lognormal" | "triangular" | "empirical"
            );
            let next_is_paren =
                matches!(self.tokens.get(self.pos + 1), Some(t) if t.kind == TokenKind::LParen);
            if is_dist && next_is_paren {
                let dist = self.parse_dist_call(unit, what)?;
                return Ok((dist.to_dist().mean(), Some(dist)));
            }
        }
        Ok((self.expect_number(unit, what)?, None))
    }

    /// One distribution call; the cursor sits on the distribution
    /// keyword. Quantity-valued parameters are unit-checked against the
    /// phase's unit; sigma and empirical weights are unit-less. Like
    /// every other value position the parser is permissive about
    /// *values* — `lognormal(10s, -1)` parses; the linter flags it
    /// (E011) and the compiler rejects it as a backstop.
    fn parse_dist_call(&mut self, unit: Option<Unit>, what: &str) -> Result<DistAst, LangError> {
        let kw_span = self.pos_span();
        let name = self.expect_ident()?;
        self.expect_token(TokenKind::LParen)?;
        let ast = match name.as_str() {
            "uniform" => {
                let lo = self.expect_number(unit, what)?;
                let hi = self.expect_number(unit, what)?;
                DistAst::Uniform {
                    lo,
                    hi,
                    span: kw_span,
                }
            }
            "lognormal" => {
                let median = self.expect_number(unit, what)?;
                let sigma = self.expect_number(None, "sigma")?;
                DistAst::LogNormal {
                    median,
                    sigma,
                    span: kw_span,
                }
            }
            "triangular" => {
                let lo = self.expect_number(unit, what)?;
                let mode = self.expect_number(unit, what)?;
                let hi = self.expect_number(unit, what)?;
                DistAst::Triangular {
                    lo,
                    mode,
                    hi,
                    span: kw_span,
                }
            }
            "empirical" => {
                let mut samples = Vec::new();
                while !matches!(self.peek().kind, TokenKind::RParen | TokenKind::Eof) {
                    let v = self.expect_number(unit, what)?;
                    let w = self.expect_number(None, "weight")?;
                    samples.push((v, w));
                }
                DistAst::Empirical {
                    samples,
                    span: kw_span,
                }
            }
            other => unreachable!("caller checked the distribution name, got `{other}`"),
        };
        self.expect_token(TokenKind::RParen)?;
        // Widen the span to the whole call so diagnostics and fix-its
        // can splice it.
        let full = Span::with_range(
            kw_span.line,
            kw_span.col,
            kw_span.offset,
            self.prev_end() - kw_span.offset,
        );
        Ok(match ast {
            DistAst::Uniform { lo, hi, .. } => DistAst::Uniform { lo, hi, span: full },
            DistAst::LogNormal { median, sigma, .. } => DistAst::LogNormal {
                median,
                sigma,
                span: full,
            },
            DistAst::Triangular { lo, mode, hi, .. } => DistAst::Triangular {
                lo,
                mode,
                hi,
                span: full,
            },
            DistAst::Empirical { samples, .. } => DistAst::Empirical {
                samples,
                span: full,
            },
        })
    }

    /// `eff <number>` if present. Any value parses; the linter enforces
    /// the (0, 1] range (E006). Returns the value and its span (unknown
    /// when defaulted).
    fn parse_optional_eff(&mut self) -> Result<(f64, Span), LangError> {
        if self.peek_keyword("eff") {
            self.next();
            let span = self.pos_span();
            let v = self.expect_number(None, "eff")?;
            Ok((v, span))
        } else {
            Ok((1.0, Span::default()))
        }
    }

    fn parse_task(&mut self) -> Result<TaskAst, LangError> {
        let (name, name_span) = self.expect_ident_spanned()?;
        let (count, count_span) = if self.peek().kind == TokenKind::LBracket {
            self.next();
            let span = self.pos_span();
            let n = self.expect_uint("replica count")? as usize;
            self.expect_token(TokenKind::RBracket)?;
            (n, span)
        } else {
            (1, name_span)
        };
        let chain = if self.peek_keyword("chain") {
            self.next();
            true
        } else {
            false
        };
        self.expect_token(TokenKind::LBrace)?;
        let mut task = TaskAst {
            name,
            span: name_span,
            count,
            count_span,
            chain,
            nodes: 1,
            nodes_span: name_span,
            phases: Vec::new(),
            after: Vec::new(),
        };
        loop {
            match &self.peek().kind {
                TokenKind::RBrace => {
                    self.next();
                    break;
                }
                TokenKind::Ident(kw) => {
                    let kw = kw.clone();
                    let kw_span = self.pos_span();
                    self.next();
                    match kw.as_str() {
                        "nodes" => {
                            task.nodes_span = self.pos_span();
                            task.nodes = self.expect_uint("nodes")?;
                        }
                        "compute" => {
                            let (flops, dist) =
                                self.expect_quantity(Some(Unit::Flops), "compute")?;
                            let (eff, eff_span) = self.parse_optional_eff()?;
                            task.phases.push(PhaseAst::Compute {
                                flops,
                                eff,
                                span: kw_span,
                                eff_span,
                                dist,
                            });
                        }
                        "node_bytes" => {
                            let resource = self.expect_ident()?;
                            let (bytes, dist) =
                                self.expect_quantity(Some(Unit::Bytes), "node_bytes")?;
                            let (eff, eff_span) = self.parse_optional_eff()?;
                            task.phases.push(PhaseAst::NodeBytes {
                                resource,
                                bytes,
                                eff,
                                span: kw_span,
                                eff_span,
                                dist,
                            });
                        }
                        "system_bytes" => {
                            let resource = self.expect_ident()?;
                            let (bytes, dist) =
                                self.expect_quantity(Some(Unit::Bytes), "system_bytes")?;
                            let cap = if self.peek_keyword("cap") {
                                self.next();
                                Some(self.expect_number(Some(Unit::BytesPerSec), "cap")?)
                            } else {
                                None
                            };
                            task.phases.push(PhaseAst::SystemBytes {
                                resource,
                                bytes,
                                cap,
                                span: kw_span,
                                dist,
                            });
                        }
                        "overhead" => {
                            let label = self.expect_ident()?;
                            let (seconds, dist) =
                                self.expect_quantity(Some(Unit::Seconds), "overhead")?;
                            task.phases.push(PhaseAst::Overhead {
                                label,
                                seconds,
                                span: kw_span,
                                dist,
                            });
                        }
                        "after" => {
                            let (name, span) = self.expect_ident_spanned()?;
                            let index = if self.peek().kind == TokenKind::LBracket {
                                self.next();
                                let i = self.expect_uint("replica index")? as usize;
                                self.expect_token(TokenKind::RBracket)?;
                                Some(i)
                            } else {
                                None
                            };
                            let stmt_span = Span::with_range(
                                kw_span.line,
                                kw_span.col,
                                kw_span.offset,
                                self.prev_end() - kw_span.offset,
                            );
                            task.after.push(AfterRef {
                                name,
                                index,
                                span,
                                stmt_span,
                            });
                        }
                        other => {
                            return Err(self.err(format!(
                                "unknown task statement `{other}` (expected nodes, compute, \
                                 node_bytes, system_bytes, overhead, or after)"
                            )));
                        }
                    }
                }
                other => {
                    return Err(self.err(format!("expected a task statement, found {other}")));
                }
            }
        }
        Ok(task)
    }

    /// A rate: a bytes/s number, or a flops number (interpreted as
    /// FLOP/s). Returns (value, is_flops).
    fn expect_rate(&mut self, what: &str) -> Result<(f64, bool), LangError> {
        let t = self.next();
        match t.kind {
            TokenKind::Number { value, unit } => match unit {
                Some(Unit::BytesPerSec) => Ok((value, false)),
                Some(Unit::Flops) => Ok((value, true)),
                None => Ok((value, false)),
                Some(other) => Err(LangError::new(
                    format!("{what}: expected a rate (B/s or FLOPS), got {other:?}"),
                    t.line,
                    t.col,
                )),
            },
            other => Err(LangError::new(
                format!("{what}: expected a rate, found {other}"),
                t.line,
                t.col,
            )),
        }
    }

    fn parse_machine(&mut self) -> Result<MachineAst, LangError> {
        let (name, span) = self.expect_ident_spanned()?;
        self.expect_token(TokenKind::LBrace)?;
        let mut m = MachineAst {
            name,
            span,
            nodes: 1,
            node_resources: Vec::new(),
            system_resources: Vec::new(),
        };
        loop {
            match &self.peek().kind {
                TokenKind::RBrace => {
                    self.next();
                    break;
                }
                TokenKind::Ident(kw) => {
                    let kw = kw.clone();
                    self.next();
                    match kw.as_str() {
                        "nodes" => m.nodes = self.expect_uint("nodes")?,
                        "node" => {
                            let id = self.expect_ident()?;
                            let (rate, is_flops) = self.expect_rate("node peak")?;
                            m.node_resources.push((id, rate, is_flops));
                        }
                        "system" => {
                            let id = self.expect_ident()?;
                            let (rate, is_flops) = self.expect_rate("system peak")?;
                            if is_flops {
                                return Err(self.err("system peaks are bandwidths (B/s)"));
                            }
                            m.system_resources.push((id, rate, false));
                        }
                        "system_per_node" => {
                            let id = self.expect_ident()?;
                            let (rate, is_flops) = self.expect_rate("system peak")?;
                            if is_flops {
                                return Err(self.err("system peaks are bandwidths (B/s)"));
                            }
                            m.system_resources.push((id, rate, true));
                        }
                        other => {
                            return Err(self.err(format!(
                                "unknown machine statement `{other}` (expected nodes, node,                                  system, or system_per_node)"
                            )));
                        }
                    }
                }
                other => {
                    return Err(self.err(format!("expected a machine statement, found {other}")));
                }
            }
        }
        Ok(m)
    }

    fn parse_targets(&mut self) -> Result<TargetsAst, LangError> {
        self.expect_token(TokenKind::LBrace)?;
        let mut t = TargetsAst::default();
        loop {
            match &self.peek().kind {
                TokenKind::RBrace => {
                    self.next();
                    break;
                }
                TokenKind::Ident(kw) if kw == "makespan" => {
                    self.next();
                    t.makespan_span = self.pos_span();
                    t.makespan = Some(self.expect_number(Some(Unit::Seconds), "makespan")?);
                }
                TokenKind::Ident(kw) if kw == "throughput" => {
                    self.next();
                    t.throughput_span = self.pos_span();
                    let n = self.expect_number(None, "throughput")?;
                    if self.peek_keyword("per") {
                        self.next();
                        let per = self.expect_number(Some(Unit::Seconds), "per")?;
                        if per <= 0.0 {
                            return Err(self.err("`per` duration must be positive"));
                        }
                        t.throughput = Some(n / per);
                    } else {
                        t.throughput = Some(n);
                    }
                }
                other => {
                    return Err(self.err(format!(
                        "expected `makespan` or `throughput`, found {other}"
                    )));
                }
            }
        }
        Ok(t)
    }
}

/// Parses a workflow source file.
pub fn parse(source: &str) -> Result<WorkflowAst, LangError> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut machines = Vec::new();
    while p.peek_keyword("machine") {
        p.next();
        machines.push(p.parse_machine()?);
    }
    p.expect_keyword("workflow")?;
    let (name, name_span) = p.expect_ident_spanned()?;
    let (machine, machine_span) = if p.peek_keyword("on") {
        p.next();
        let (m, span) = p.expect_ident_spanned()?;
        (Some(m), span)
    } else {
        (None, Span::default())
    };
    p.expect_token(TokenKind::LBrace)?;
    let mut ast = WorkflowAst {
        name,
        name_span,
        machine,
        machine_span,
        targets: TargetsAst::default(),
        tasks: Vec::new(),
        machines,
    };
    loop {
        match &p.peek().kind {
            TokenKind::RBrace => {
                p.next();
                break;
            }
            TokenKind::Ident(kw) if kw == "task" => {
                p.next();
                ast.tasks.push(p.parse_task()?);
            }
            TokenKind::Ident(kw) if kw == "targets" => {
                p.next();
                ast.targets = p.parse_targets()?;
            }
            other => {
                return Err(p.err(format!("expected `task` or `targets`, found {other}")));
            }
        }
    }
    if p.peek().kind != TokenKind::Eof {
        return Err(p.err(format!("unexpected trailing input: {}", p.peek().kind)));
    }
    Ok(ast)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LCLS: &str = r#"
# The LCLS workflow of paper Fig. 4.
workflow lcls on cori-hsw {
  targets { makespan 10min  throughput 6 per 600s }
  task analyze[5] {
    nodes 32
    system_bytes ext 1TB cap 1GB/s
    node_bytes dram 1024GB
    system_bytes bb 1GB
  }
  task merge {
    nodes 1
    system_bytes bb 5GB
    after analyze
  }
}
"#;

    #[test]
    fn parses_the_lcls_example() {
        let ast = parse(LCLS).unwrap();
        assert_eq!(ast.name, "lcls");
        assert_eq!(ast.machine.as_deref(), Some("cori-hsw"));
        assert_eq!(ast.targets.makespan, Some(600.0));
        assert!((ast.targets.throughput.unwrap() - 0.01).abs() < 1e-12);
        assert_eq!(ast.tasks.len(), 2);
        let analyze = &ast.tasks[0];
        assert_eq!(analyze.count, 5);
        assert_eq!(analyze.nodes, 32);
        assert_eq!(analyze.phases.len(), 3);
        match &analyze.phases[0] {
            PhaseAst::SystemBytes {
                resource,
                bytes,
                cap,
                ..
            } => {
                assert_eq!(resource, "ext");
                assert_eq!(*bytes, 1e12);
                assert_eq!(*cap, Some(1e9));
            }
            other => panic!("expected system_bytes, got {other:?}"),
        }
        let merge = &ast.tasks[1];
        assert_eq!(merge.after.len(), 1);
        assert_eq!(merge.after[0].name, "analyze");
        assert_eq!(merge.after[0].index, None);
    }

    #[test]
    fn parses_compute_and_overhead() {
        let ast = parse(
            "workflow bgw { task e { nodes 64 compute 1164PFLOPS eff 0.39 \
             overhead setup 5s } task s { nodes 64 compute 3226PFLOPS after e } }",
        )
        .unwrap();
        match &ast.tasks[0].phases[0] {
            PhaseAst::Compute { flops, eff, .. } => {
                assert_eq!(*flops, 1.164e18);
                assert_eq!(*eff, 0.39);
            }
            other => panic!("expected compute, got {other:?}"),
        }
        match &ast.tasks[0].phases[1] {
            PhaseAst::Overhead { label, seconds, .. } => {
                assert_eq!(label, "setup");
                assert_eq!(*seconds, 5.0);
            }
            other => panic!("expected overhead, got {other:?}"),
        }
        assert_eq!(ast.tasks[1].after[0].name, "e");
    }

    #[test]
    fn spans_point_at_the_declaration_sites() {
        let ast = parse(LCLS).unwrap();
        // Line/col are 1-based; `workflow lcls on cori-hsw` is line 3.
        let lc = |s: Span| (s.line, s.col);
        assert_eq!(lc(ast.name_span), (3, 10));
        assert_eq!(lc(ast.machine_span), (3, 18));
        assert_eq!(ast.targets.makespan_span.line, 4);
        let analyze = &ast.tasks[0];
        assert_eq!(lc(analyze.span), (5, 8));
        assert_eq!(lc(analyze.count_span), (5, 16));
        assert_eq!(analyze.nodes_span.line, 6);
        assert_eq!(lc(analyze.phases[0].span()), (7, 5));
        let merge = &ast.tasks[1];
        assert_eq!(lc(merge.after[0].span), (14, 11));
    }

    #[test]
    fn byte_ranges_slice_back_to_the_declarations() {
        let ast = parse(LCLS).unwrap();
        let slice = |s: Span| &LCLS[s.offset..s.end_offset()];
        assert_eq!(slice(ast.name_span), "lcls");
        assert_eq!(slice(ast.machine_span), "cori-hsw");
        assert_eq!(slice(ast.targets.makespan_span), "10min");
        let analyze = &ast.tasks[0];
        assert_eq!(slice(analyze.span), "analyze");
        assert_eq!(slice(analyze.count_span), "5");
        assert_eq!(slice(analyze.nodes_span), "32");
        let merge = &ast.tasks[1];
        assert_eq!(slice(merge.after[0].span), "analyze");
        // The statement span covers the whole dependency edge so a
        // fix-it can delete it.
        assert_eq!(slice(merge.after[0].stmt_span), "after analyze");
        let ast = parse("workflow w { task a[3] { } task b { after a[1] } }").unwrap();
        let src = "workflow w { task a[3] { } task b { after a[1] } }";
        let s = ast.tasks[1].after[0].stmt_span;
        assert_eq!(&src[s.offset..s.end_offset()], "after a[1]");
    }

    #[test]
    fn default_spans_are_unknown() {
        let ast = parse("workflow w { task a { compute 1GFLOPS } }").unwrap();
        assert_eq!(ast.machine_span, Span::default());
        assert!(!ast.machine_span.is_known());
        match &ast.tasks[0].phases[0] {
            PhaseAst::Compute { eff, eff_span, .. } => {
                assert_eq!(*eff, 1.0);
                assert!(!eff_span.is_known());
            }
            other => panic!("expected compute, got {other:?}"),
        }
        // A bracket-less task anchors count/nodes spans on its name.
        assert_eq!(ast.tasks[0].count_span, ast.tasks[0].span);
    }

    #[test]
    fn suspicious_values_parse_for_the_linter() {
        // Replica count 0 and out-of-range eff are lint errors (E007,
        // E006), not parse errors.
        let ast = parse("workflow w { task a[0] { compute 1GFLOPS eff 2 } }").unwrap();
        assert_eq!(ast.tasks[0].count, 0);
        match &ast.tasks[0].phases[0] {
            PhaseAst::Compute { eff, eff_span, .. } => {
                assert_eq!(*eff, 2.0);
                assert!(eff_span.is_known());
            }
            other => panic!("expected compute, got {other:?}"),
        }
    }

    #[test]
    fn after_with_index() {
        let ast = parse("workflow w { task a[3] { } task b { after a[1] } }").unwrap();
        assert_eq!(ast.tasks[1].after[0].index, Some(1));
    }

    #[test]
    fn throughput_as_plain_rate() {
        let ast = parse("workflow w { targets { throughput 0.02 } }").unwrap();
        assert_eq!(ast.targets.throughput, Some(0.02));
    }

    #[test]
    fn error_messages_name_the_problem() {
        let e = parse("task a {}").unwrap_err();
        assert!(e.message.contains("expected `workflow`"), "{e}");
        let e = parse("workflow w { task a { nodes 1.5 } }").unwrap_err();
        assert!(e.message.contains("integer"), "{e}");
        let e = parse("workflow w { task a { compute 5GB } }").unwrap_err();
        assert!(e.message.contains("wrong unit"), "{e}");
        let e = parse("workflow w { task a { warp 9 } }").unwrap_err();
        assert!(e.message.contains("unknown task statement"), "{e}");
        let e = parse("workflow w { task a { eff } }").unwrap_err();
        assert!(e.message.contains("unknown task statement"), "{e}");
        let e = parse("workflow w { targets { makespan } }").unwrap_err();
        assert!(e.message.contains("expected a number"), "{e}");
        let e = parse("workflow w { targets { throughput 6 per 0s } }").unwrap_err();
        assert!(e.message.contains("positive"), "{e}");
        let e = parse("workflow w { } trailing").unwrap_err();
        assert!(e.message.contains("trailing"), "{e}");
    }

    #[test]
    fn eof_inside_block_is_an_error() {
        let e = parse("workflow w { task a {").unwrap_err();
        assert!(e.message.contains("expected a task statement"), "{e}");
    }

    #[test]
    fn distribution_calls_parse_with_mean_as_nominal() {
        let src = "workflow w { task a {\n\
                   compute lognormal(4PFLOPS, 0.3) eff 0.5\n\
                   overhead setup uniform(4s, 6s)\n\
                   system_bytes ext triangular(1GB, 2GB, 6GB) cap 1GB/s\n\
                   node_bytes hbm empirical(1GB 3, 2GB 1)\n\
                   } }";
        let ast = parse(src).unwrap();
        let phases = &ast.tasks[0].phases;
        match &phases[0] {
            PhaseAst::Compute {
                flops,
                eff,
                dist: Some(DistAst::LogNormal { median, sigma, .. }),
                ..
            } => {
                assert_eq!(*median, 4e15);
                assert_eq!(*sigma, 0.3);
                assert_eq!(*eff, 0.5);
                // Nominal = lognormal mean = median * exp(sigma^2/2).
                assert_eq!(*flops, 4e15 * (0.5 * 0.3f64 * 0.3).exp());
            }
            other => panic!("expected compute with lognormal, got {other:?}"),
        }
        match &phases[1] {
            PhaseAst::Overhead {
                seconds,
                dist: Some(DistAst::Uniform { lo, hi, .. }),
                ..
            } => {
                assert_eq!((*lo, *hi), (4.0, 6.0));
                assert_eq!(*seconds, 5.0);
            }
            other => panic!("expected overhead with uniform, got {other:?}"),
        }
        match &phases[2] {
            PhaseAst::SystemBytes {
                bytes,
                cap,
                dist: Some(DistAst::Triangular { lo, mode, hi, .. }),
                ..
            } => {
                assert_eq!((*lo, *mode, *hi), (1e9, 2e9, 6e9));
                assert_eq!(*cap, Some(1e9));
                assert_eq!(*bytes, 3e9); // (lo + mode + hi) / 3
            }
            other => panic!("expected system_bytes with triangular, got {other:?}"),
        }
        match &phases[3] {
            PhaseAst::NodeBytes {
                bytes,
                dist: Some(DistAst::Empirical { samples, .. }),
                ..
            } => {
                assert_eq!(samples, &[(1e9, 3.0), (2e9, 1.0)]);
                assert_eq!(*bytes, 1.25e9); // weighted mean
            }
            other => panic!("expected node_bytes with empirical, got {other:?}"),
        }
    }

    #[test]
    fn distribution_spans_cover_the_whole_call() {
        let src = "workflow w { task a { overhead s uniform(4s, 6s) } }";
        let ast = parse(src).unwrap();
        let dist = ast.tasks[0].phases[0].dist().unwrap();
        let s = dist.span();
        assert_eq!(&src[s.offset..s.end_offset()], "uniform(4s, 6s)");
    }

    #[test]
    fn distribution_quantities_are_unit_checked() {
        // Quantity parameters carry the phase unit; sigma is unit-less.
        let e = parse("workflow w { task a { compute lognormal(4s, 0.3) } }").unwrap_err();
        assert!(e.message.contains("wrong unit"), "{e}");
        let e = parse("workflow w { task a { overhead s uniform(4s 6GB) } }").unwrap_err();
        assert!(e.message.contains("wrong unit"), "{e}");
        // Unclosed call.
        let e = parse("workflow w { task a { overhead s uniform(4s 6s } }").unwrap_err();
        assert!(e.message.contains("expected `)`"), "{e}");
    }

    #[test]
    fn suspicious_distribution_values_parse_for_the_linter() {
        // Negative sigma and an empty empirical set are lint errors
        // (E011), not parse errors.
        let ast = parse("workflow w { task a { compute lognormal(1PFLOPS, -0.5) } }").unwrap();
        match ast.tasks[0].phases[0].dist() {
            Some(DistAst::LogNormal { sigma, .. }) => assert_eq!(*sigma, -0.5),
            other => panic!("expected lognormal, got {other:?}"),
        }
        let ast = parse("workflow w { task a { node_bytes hbm empirical() } }").unwrap();
        match ast.tasks[0].phases[0].dist() {
            Some(DistAst::Empirical { samples, .. }) => assert!(samples.is_empty()),
            other => panic!("expected empirical, got {other:?}"),
        }
    }

    #[test]
    fn an_identifier_named_like_a_distribution_is_not_a_call() {
        // `uniform` without `(` stays a plain identifier (here a
        // resource name).
        let ast = parse("workflow w { task a { node_bytes uniform 4GB } }").unwrap();
        match &ast.tasks[0].phases[0] {
            PhaseAst::NodeBytes {
                resource,
                bytes,
                dist: None,
                ..
            } => {
                assert_eq!(resource, "uniform");
                assert_eq!(*bytes, 4e9);
            }
            other => panic!("expected plain node_bytes, got {other:?}"),
        }
    }
}
