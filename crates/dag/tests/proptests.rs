//! Property-based tests for DAG invariants and the list scheduler.

use proptest::prelude::*;
use wrm_dag::generate::random_layered;
use wrm_dag::{list_schedule, Dag, GanttChart, Policy};

prop_compose! {
    fn dag_strategy()(
        seed in any::<u64>(),
        layers in 1usize..8,
        width in 1usize..7,
        nodes in 1u64..12,
    ) -> Dag {
        random_layered(seed, layers, width, nodes, 100.0).unwrap()
    }
}

proptest! {
    #[test]
    fn topo_order_respects_every_edge(dag in dag_strategy()) {
        let order = dag.topo_order().unwrap();
        prop_assert_eq!(order.len(), dag.len());
        let mut pos = vec![0usize; dag.len()];
        for (i, id) in order.iter().enumerate() {
            pos[id.0] = i;
        }
        for id in dag.task_ids() {
            for &s in dag.successors(id) {
                prop_assert!(pos[id.0] < pos[s.0]);
            }
        }
    }

    #[test]
    fn levels_strictly_increase_along_edges(dag in dag_strategy()) {
        let levels = dag.levels().unwrap();
        for id in dag.task_ids() {
            for &s in dag.successors(id) {
                prop_assert!(levels[s.0] > levels[id.0]);
            }
        }
    }

    #[test]
    fn critical_path_bounds(dag in dag_strategy()) {
        let (path, total) = dag.critical_path().unwrap();
        // The critical path is a real dependency chain.
        for w in path.windows(2) {
            prop_assert!(dag.successors(w[0]).contains(&w[1]));
        }
        // Its length is bounded by any single task below and the serial
        // sum above.
        let max_task = dag
            .tasks()
            .iter()
            .map(|t| t.duration)
            .fold(0.0f64, f64::max);
        prop_assert!(total >= max_task - 1e-9);
        prop_assert!(total <= dag.total_duration() + 1e-9);
    }

    #[test]
    fn schedule_invariants(dag in dag_strategy(), extra in 0u64..32, policy_idx in 0usize..3) {
        let policy = [Policy::Fifo, Policy::LongestFirst, Policy::CriticalPathFirst][policy_idx];
        let pool = dag.max_task_nodes().max(1) + extra;
        let sched = list_schedule(&dag, pool, policy).unwrap();

        // Every task is scheduled exactly once with its own duration.
        prop_assert_eq!(sched.spans.len(), dag.len());
        for span in &sched.spans {
            let t = dag.task(span.task);
            prop_assert!((span.duration() - t.duration).abs() < 1e-9);
            prop_assert_eq!(span.nodes, t.nodes);
            prop_assert!(span.start >= 0.0);
        }

        // Dependencies respected.
        for id in dag.task_ids() {
            for &s in dag.successors(id) {
                prop_assert!(sched.spans[s.0].start >= sched.spans[id.0].end - 1e-9);
            }
        }

        // Node capacity never exceeded: check at every span start.
        for probe in &sched.spans {
            let t = probe.start;
            let in_use: u64 = sched
                .spans
                .iter()
                .filter(|s| s.start <= t + 1e-12 && s.end > t + 1e-12)
                .map(|s| s.nodes)
                .sum();
            prop_assert!(in_use <= pool, "in_use {} > pool {}", in_use, pool);
        }

        // Makespan is bounded below by the critical path and by the
        // node-seconds / pool "area" bound, and above by serial execution.
        let (_, cp) = dag.critical_path().unwrap();
        prop_assert!(sched.makespan >= cp - 1e-9);
        prop_assert!(sched.makespan >= dag.total_node_seconds() / pool as f64 - 1e-9);
        prop_assert!(sched.makespan <= dag.total_duration() + 1e-9);

        // Utilization in [0, 1].
        let u = sched.utilization();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&u));
    }

    #[test]
    fn gantt_covers_every_task(dag in dag_strategy()) {
        let pool = dag.max_task_nodes().max(1) * 4;
        let sched = list_schedule(&dag, pool, Policy::Fifo).unwrap();
        let g = GanttChart::build(&dag, &sched).unwrap();
        prop_assert_eq!(g.rows.len(), dag.len());
        prop_assert!((g.makespan - sched.makespan).abs() < 1e-12);
        // Critical-path rows exist exactly for the critical path.
        let marked = g.rows.iter().filter(|r| r.on_critical_path).count();
        prop_assert_eq!(marked, g.critical_path.len());
        // Coverage cannot exceed 1 by more than float noise when the pool
        // is wide enough to start critical tasks immediately... it can,
        // in general, exceed 1 only when CP time > makespan, impossible:
        prop_assert!(g.critical_path_coverage() <= 1.0 + 1e-9);
    }

    #[test]
    fn wider_pools_never_hurt_fifo_makespan_on_bags(
        n in 1usize..40,
        dur in 1.0f64..50.0,
        nodes in 1u64..8,
        pool1 in 1u64..64,
        pool2 in 1u64..64,
    ) {
        // Monotonicity is guaranteed for independent tasks (no dependency
        // anomalies possible).
        let dag = wrm_dag::generate::bag_of_tasks(n, nodes, dur).unwrap();
        if dag.max_task_nodes() > pool1.min(pool2) {
            return Ok(()); // task does not fit the smaller pool
        }
        let small = pool1.min(pool2);
        let large = pool1.max(pool2);
        let ms_small = list_schedule(&dag, small, Policy::Fifo).unwrap().makespan;
        let ms_large = list_schedule(&dag, large, Policy::Fifo).unwrap().makespan;
        prop_assert!(ms_large <= ms_small + 1e-9);
    }
}
