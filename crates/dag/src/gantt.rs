//! Gantt-chart model (Fig. 7d): per-task execution spans with the
//! critical path marked. Rendering lives in `wrm-plot`; this module owns
//! the data.

use crate::graph::{Dag, DagError, TaskId};
use crate::schedule::Schedule;
use serde::{Deserialize, Serialize};

/// One Gantt row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GanttRow {
    /// Task id in the source DAG.
    pub task: TaskId,
    /// Task name.
    pub name: String,
    /// Nodes held.
    pub nodes: u64,
    /// Start time (s).
    pub start: f64,
    /// End time (s).
    pub end: f64,
    /// True when the task lies on the duration-critical path.
    pub on_critical_path: bool,
}

/// The Gantt chart: rows ordered by start time (ties by task id).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GanttChart {
    /// Workflow name.
    pub name: String,
    /// Ordered rows.
    pub rows: Vec<GanttRow>,
    /// The schedule's makespan.
    pub makespan: f64,
    /// The critical path as task ids, in execution order.
    pub critical_path: Vec<TaskId>,
}

impl GanttChart {
    /// Builds a chart from a DAG and its schedule.
    pub fn build(dag: &Dag, schedule: &Schedule) -> Result<Self, DagError> {
        let (critical_path, _) = dag.critical_path()?;
        let on_cp: Vec<bool> = {
            let mut v = vec![false; dag.len()];
            for &id in &critical_path {
                v[id.0] = true;
            }
            v
        };
        let mut rows: Vec<GanttRow> = schedule
            .spans
            .iter()
            .map(|s| GanttRow {
                task: s.task,
                name: dag.task(s.task).name.clone(),
                nodes: s.nodes,
                start: s.start,
                end: s.end,
                on_critical_path: on_cp[s.task.0],
            })
            .collect();
        rows.sort_by(|a, b| {
            a.start
                .partial_cmp(&b.start)
                .expect("finite")
                .then(a.task.0.cmp(&b.task.0))
        });
        Ok(GanttChart {
            name: dag.name.clone(),
            rows,
            makespan: schedule.makespan,
            critical_path,
        })
    }

    /// Total time covered by critical-path rows (the solid black line of
    /// Fig. 7d).
    pub fn critical_path_time(&self) -> f64 {
        self.rows
            .iter()
            .filter(|r| r.on_critical_path)
            .map(|r| r.end - r.start)
            .sum()
    }

    /// Fraction of the makespan explained by the critical path; 1.0 means
    /// no scheduling-induced idle gaps along it.
    pub fn critical_path_coverage(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.critical_path_time() / self.makespan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{list_schedule, Policy};

    fn bgw(nodes: u64, te: f64, ts: f64) -> (Dag, Schedule) {
        let mut d = Dag::new("BGW");
        let e = d.add_task("Epsilon", nodes, te).unwrap();
        let s = d.add_task("Sigma", nodes, ts).unwrap();
        d.add_dep(e, s).unwrap();
        let sched = list_schedule(&d, 1792, Policy::Fifo).unwrap();
        (d, sched)
    }

    #[test]
    fn bgw_critical_path_is_the_whole_chain_at_both_scales() {
        // Fig. 7d: the critical path remains the same as BGW scales.
        for (nodes, te, ts) in [(64, 1200.0, 2985.0), (1024, 180.0, 225.0)] {
            let (d, sched) = bgw(nodes, te, ts);
            let g = GanttChart::build(&d, &sched).unwrap();
            assert_eq!(g.critical_path.len(), 2);
            assert!((g.critical_path_time() - (te + ts)).abs() < 1e-9);
            assert!((g.critical_path_coverage() - 1.0).abs() < 1e-12);
            assert!(g.rows.iter().all(|r| r.on_critical_path));
        }
    }

    #[test]
    fn rows_are_ordered_by_start() {
        let mut d = Dag::new("w");
        let mut ids = Vec::new();
        for i in 0..4 {
            ids.push(d.add_task(format!("t{i}"), 2, 10.0 + i as f64).unwrap());
        }
        let sched = list_schedule(&d, 4, Policy::LongestFirst).unwrap();
        let g = GanttChart::build(&d, &sched).unwrap();
        for w in g.rows.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        assert_eq!(g.rows.len(), 4);
    }

    #[test]
    fn off_critical_path_rows_are_marked() {
        let mut d = Dag::new("w");
        let long = d.add_task("long", 1, 100.0).unwrap();
        let short = d.add_task("short", 1, 1.0).unwrap();
        let sched = list_schedule(&d, 2, Policy::Fifo).unwrap();
        let g = GanttChart::build(&d, &sched).unwrap();
        let row_long = g.rows.iter().find(|r| r.task == long).unwrap();
        let row_short = g.rows.iter().find(|r| r.task == short).unwrap();
        assert!(row_long.on_critical_path);
        assert!(!row_short.on_critical_path);
        // Both start immediately; coverage equals 1.0 (100/100).
        assert!((g.critical_path_coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_chart() {
        let d = Dag::new("empty");
        let sched = list_schedule(&d, 4, Policy::Fifo).unwrap();
        let g = GanttChart::build(&d, &sched).unwrap();
        assert!(g.rows.is_empty());
        assert_eq!(g.critical_path_coverage(), 0.0);
    }
}
