//! Longest-path scheduling over a CSR dependency graph.
//!
//! The simulator's indexed form of a workflow (`wrm-sim`'s `BaseIndex`)
//! stores dependencies as a compressed sparse row table: per-task
//! unresolved-dependency counts plus a flattened dependents list. The
//! analytic sweep fast path needs exactly one graph computation over
//! that form — each task's start is the max of its dependencies' finish
//! times, its finish is a caller-supplied function of its start — so the
//! kernel lives here, next to the other graph algorithms, and takes the
//! CSR arrays directly rather than forcing a conversion to [`crate::Dag`].

/// Computes `(start, finish)` per task over a CSR dependency graph by a
/// Kahn traversal: a task's start is the maximum finish among its
/// dependencies (0.0 for roots), and its finish is `finish(task,
/// start)`, evaluated exactly once in a topological order.
///
/// `dep_count[t]` is task `t`'s dependency count;
/// `dependents[dependents_off[t] .. dependents_off[t+1]]` lists the
/// tasks unblocked by `t`. Returns `None` when the graph has a cycle
/// (some task is never released).
///
/// The fold uses `f64::max`, which is associative and commutative for
/// the non-NaN values a schedule produces, so the result is independent
/// of the order dependents are listed in — a property the bit-exactness
/// contract of the sweep fast path relies on.
pub fn longest_path_ends<F>(
    dep_count: &[u32],
    dependents_off: &[u32],
    dependents: &[u32],
    mut finish: F,
) -> Option<Vec<(f64, f64)>>
where
    F: FnMut(u32, f64) -> f64,
{
    let n = dep_count.len();
    debug_assert_eq!(dependents_off.len(), n + 1);
    let mut remaining = dep_count.to_vec();
    let mut sched = vec![(0.0f64, 0.0f64); n];
    let mut ready: Vec<u32> = (0..n as u32)
        .filter(|&t| dep_count[t as usize] == 0)
        .collect();
    let mut visited = 0usize;
    while let Some(t) = ready.pop() {
        visited += 1;
        let start = sched[t as usize].0;
        let end = finish(t, start);
        sched[t as usize].1 = end;
        let lo = dependents_off[t as usize] as usize;
        let hi = dependents_off[t as usize + 1] as usize;
        for &d in &dependents[lo..hi] {
            let du = d as usize;
            sched[du].0 = sched[du].0.max(end);
            remaining[du] -= 1;
            if remaining[du] == 0 {
                ready.push(d);
            }
        }
    }
    (visited == n).then_some(sched)
}

/// Total node-seconds of work: `sum of nodes[t] * duration[t]`. The
/// per-resource work aggregation the Graham-style makespan upper bound
/// charges against the pool (`W / (P - q_max + 1)`), and the numerator
/// of the pool-occupancy lower bound (`W / P`).
pub fn resource_work(nodes: &[u64], durations: &[f64]) -> f64 {
    debug_assert_eq!(nodes.len(), durations.len());
    nodes
        .iter()
        .zip(durations)
        .map(|(&n, &d)| n as f64 * d)
        .sum()
}

/// The largest number of the given tasks that can hold nodes
/// simultaneously on a pool of `pool` nodes: the longest prefix of the
/// ascending node-count sort whose sum fits. Returns at least 1 when
/// any task exists (a single task always runs alone), 0 for an empty
/// slice. Tasks larger than the pool never co-run at all, but callers
/// validate that separately (`TaskTooLarge`), so they count like any
/// other here.
pub fn max_coschedulable(node_counts: &[u64], pool: u64) -> usize {
    if node_counts.is_empty() {
        return 0;
    }
    let mut sorted = node_counts.to_vec();
    sorted.sort_unstable();
    let mut held = 0u128;
    let mut k = 0usize;
    for &n in &sorted {
        held += u128::from(n.max(1));
        if held > u128::from(pool) {
            break;
        }
        k += 1;
    }
    k.max(1)
}

#[cfg(test)]
mod tests {
    use super::{longest_path_ends, max_coschedulable, resource_work};

    /// Builds CSR arrays from an edge list `(from, to)`.
    fn csr(n: usize, edges: &[(u32, u32)]) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
        let mut dep_count = vec![0u32; n];
        let mut out = vec![0u32; n];
        for &(a, b) in edges {
            dep_count[b as usize] += 1;
            out[a as usize] += 1;
        }
        let mut off = vec![0u32; n + 1];
        for i in 0..n {
            off[i + 1] = off[i] + out[i];
        }
        let mut cursor = off[..n].to_vec();
        let mut dependents = vec![0u32; off[n] as usize];
        for &(a, b) in edges {
            dependents[cursor[a as usize] as usize] = b;
            cursor[a as usize] += 1;
        }
        (dep_count, off, dependents)
    }

    #[test]
    fn chain_accumulates() {
        let (dc, off, dep) = csr(4, &[(0, 1), (1, 2), (2, 3)]);
        let sched = longest_path_ends(&dc, &off, &dep, |t, s| s + (t as f64 + 1.0)).unwrap();
        assert_eq!(sched, vec![(0.0, 1.0), (1.0, 3.0), (3.0, 6.0), (6.0, 10.0)]);
    }

    #[test]
    fn diamond_takes_max() {
        // 0 -> {1 (long), 2 (short)} -> 3
        let (dc, off, dep) = csr(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let dur = [1.0, 10.0, 2.0, 1.0];
        let sched = longest_path_ends(&dc, &off, &dep, |t, s| s + dur[t as usize]).unwrap();
        assert_eq!(sched[3], (11.0, 12.0));
    }

    #[test]
    fn cycle_returns_none() {
        let (dc, off, dep) = csr(3, &[(0, 1), (1, 2), (2, 1)]);
        assert!(longest_path_ends(&dc, &off, &dep, |_, s| s + 1.0).is_none());
    }

    #[test]
    fn work_and_coschedulability() {
        assert_eq!(resource_work(&[2, 4], &[10.0, 5.0]), 40.0);
        assert_eq!(resource_work(&[], &[]), 0.0);
        // 4-node pool: {1, 2, 8} -> the 1- and 2-node tasks fit together.
        assert_eq!(max_coschedulable(&[8, 1, 2], 4), 2);
        // Everything fits.
        assert_eq!(max_coschedulable(&[1, 1, 1], 4), 3);
        // Even an oversized task counts as at least one runner.
        assert_eq!(max_coschedulable(&[9], 4), 1);
        assert_eq!(max_coschedulable(&[], 4), 0);
        // `nodes 0` tasks occupy like 1 (the compiler's clamp).
        assert_eq!(max_coschedulable(&[0, 0, 0], 2), 2);
    }

    #[test]
    fn dependent_order_does_not_change_starts() {
        // Same diamond, dependents listed in both orders.
        let a = csr(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let b = csr(4, &[(0, 2), (0, 1), (2, 3), (1, 3)]);
        let dur = [1.0, 3.0, 7.0, 2.0];
        let f = |t: u32, s: f64| s + dur[t as usize];
        assert_eq!(
            longest_path_ends(&a.0, &a.1, &a.2, f).unwrap(),
            longest_path_ends(&b.0, &b.1, &b.2, f).unwrap()
        );
    }
}
