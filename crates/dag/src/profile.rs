//! Time-resolved parallelism profiles.
//!
//! The paper notes (Section V) that the roofline's y-axis hides the
//! total task count and critical-path length, making poor pipelining
//! hard to see. A [`ParallelismProfile`] makes it visible: the step
//! function of concurrently-running tasks (and busy nodes) over time,
//! derived from a [`Schedule`].

use crate::schedule::Schedule;
use serde::{Deserialize, Serialize};

/// One step of the profile: constant concurrency on `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfileStep {
    /// Step start time (s).
    pub start: f64,
    /// Step end time (s).
    pub end: f64,
    /// Tasks running during the step.
    pub tasks: usize,
    /// Nodes busy during the step.
    pub nodes: u64,
}

impl ProfileStep {
    /// Step duration.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// The step function of task/node concurrency over a schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParallelismProfile {
    /// Ordered, contiguous steps covering `[0, makespan]`.
    pub steps: Vec<ProfileStep>,
}

impl ParallelismProfile {
    /// Builds the profile from a schedule (zero-duration spans are
    /// ignored).
    pub fn from_schedule(schedule: &Schedule) -> Self {
        let mut events: Vec<(f64, i64, i64)> = Vec::with_capacity(schedule.spans.len() * 2);
        for s in &schedule.spans {
            if s.duration() > 0.0 {
                events.push((s.start, 1, s.nodes as i64));
                events.push((s.end, -1, -(s.nodes as i64)));
            }
        }
        events.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("finite times")
                .then(a.1.cmp(&b.1))
        });
        let mut steps = Vec::new();
        let mut tasks = 0i64;
        let mut nodes = 0i64;
        let mut i = 0;
        while i < events.len() {
            let t = events[i].0;
            // Apply every event at this instant.
            while i < events.len() && events[i].0 == t {
                tasks += events[i].1;
                nodes += events[i].2;
                i += 1;
            }
            let end = if i < events.len() { events[i].0 } else { t };
            if end > t {
                steps.push(ProfileStep {
                    start: t,
                    end,
                    tasks: tasks as usize,
                    nodes: nodes as u64,
                });
            }
        }
        ParallelismProfile { steps }
    }

    /// Peak concurrent tasks.
    pub fn peak_tasks(&self) -> usize {
        self.steps.iter().map(|s| s.tasks).max().unwrap_or(0)
    }

    /// Peak busy nodes.
    pub fn peak_nodes(&self) -> u64 {
        self.steps.iter().map(|s| s.nodes).max().unwrap_or(0)
    }

    /// Time-weighted mean task concurrency.
    pub fn mean_tasks(&self) -> f64 {
        let total: f64 = self.steps.iter().map(ProfileStep::duration).sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.steps
            .iter()
            .map(|s| s.tasks as f64 * s.duration())
            .sum::<f64>()
            / total
    }

    /// Fraction of covered time spent at a single task or less: a large
    /// value flags poor pipelining (the paper's hidden-critical-path
    /// caveat).
    pub fn serial_fraction(&self) -> f64 {
        let total: f64 = self.steps.iter().map(ProfileStep::duration).sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.steps
            .iter()
            .filter(|s| s.tasks <= 1)
            .map(ProfileStep::duration)
            .sum::<f64>()
            / total
    }

    /// Concurrency at time `t` (0 outside every step).
    pub fn tasks_at(&self, t: f64) -> usize {
        self.steps
            .iter()
            .find(|s| s.start <= t && t < s.end)
            .map_or(0, |s| s.tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Dag;
    use crate::schedule::{list_schedule, Policy};

    fn lcls_profile(pool: u64) -> ParallelismProfile {
        let mut d = Dag::new("LCLS");
        let merge = d.add_task("merge", 1, 20.0).unwrap();
        for i in 0..5 {
            let a = d.add_task(format!("a{i}"), 32, 1000.0).unwrap();
            d.add_dep(a, merge).unwrap();
        }
        let sched = list_schedule(&d, pool, Policy::Fifo).unwrap();
        ParallelismProfile::from_schedule(&sched)
    }

    #[test]
    fn wide_pool_profile() {
        let p = lcls_profile(200);
        assert_eq!(p.peak_tasks(), 5);
        assert_eq!(p.peak_nodes(), 160);
        // 5 tasks for 1000 s then 1 task for 20 s.
        assert_eq!(p.steps.len(), 2);
        assert_eq!(p.tasks_at(500.0), 5);
        assert_eq!(p.tasks_at(1010.0), 1);
        assert_eq!(p.tasks_at(5000.0), 0);
        let mean = p.mean_tasks();
        assert!((mean - (5.0 * 1000.0 + 20.0) / 1020.0).abs() < 1e-9);
        // Serial fraction is the merge tail.
        assert!((p.serial_fraction() - 20.0 / 1020.0).abs() < 1e-9);
    }

    #[test]
    fn narrow_pool_is_fully_serial() {
        let p = lcls_profile(32);
        assert_eq!(p.peak_tasks(), 1);
        assert!((p.serial_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_profile() {
        let d = Dag::new("empty");
        let sched = list_schedule(&d, 4, Policy::Fifo).unwrap();
        let p = ParallelismProfile::from_schedule(&sched);
        assert!(p.steps.is_empty());
        assert_eq!(p.peak_tasks(), 0);
        assert_eq!(p.mean_tasks(), 0.0);
        assert_eq!(p.serial_fraction(), 0.0);
    }

    #[test]
    fn steps_are_contiguous_and_consistent() {
        let p = lcls_profile(64);
        for w in p.steps.windows(2) {
            assert!((w[0].end - w[1].start).abs() < 1e-12);
        }
        // Node counts match task widths: 2 x 32-node tasks at the start.
        assert_eq!(p.steps[0].tasks, 2);
        assert_eq!(p.steps[0].nodes, 64);
    }
}
