//! Workflow task graphs.
//!
//! A [`Dag`] is the workflow skeleton of the paper's Fig. 4/Fig. 9: tasks
//! with node requirements and (estimated or measured) durations, connected
//! by happens-before edges. Levels, widths and critical paths defined here
//! feed the characterization metrics of the Workflow Roofline Model
//! (number of parallel tasks, critical path length).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Index of a task inside its [`Dag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TaskId(pub usize);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One task: a job in the workflow, from a large MPI application to a
/// small script.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Task name (unique within the DAG).
    pub name: String,
    /// Nodes the task occupies while running.
    pub nodes: u64,
    /// Duration in seconds (estimate at plan time, measurement afterwards).
    pub duration: f64,
}

/// Errors from DAG construction and validation.
#[derive(Debug, Clone, PartialEq)]
pub enum DagError {
    /// An edge referenced a task id not in the graph.
    UnknownTask(TaskId),
    /// Two tasks share a name.
    DuplicateName(String),
    /// The graph contains a dependency cycle (names one involved task).
    Cycle(String),
    /// A numeric field was invalid.
    InvalidTask(String),
    /// An edge would connect a task to itself.
    SelfDependency(String),
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::UnknownTask(id) => write!(f, "unknown task id {id}"),
            DagError::DuplicateName(n) => write!(f, "duplicate task name: {n}"),
            DagError::Cycle(n) => write!(f, "dependency cycle involving task {n}"),
            DagError::InvalidTask(msg) => write!(f, "invalid task: {msg}"),
            DagError::SelfDependency(n) => write!(f, "task {n} depends on itself"),
        }
    }
}

impl std::error::Error for DagError {}

/// A directed acyclic graph of workflow tasks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dag {
    /// Workflow name.
    pub name: String,
    tasks: Vec<Task>,
    /// `succs[i]` = tasks that must start after task `i` completes.
    succs: Vec<Vec<TaskId>>,
    /// `preds[i]` = tasks that must complete before task `i` starts.
    preds: Vec<Vec<TaskId>>,
}

impl Dag {
    /// Creates an empty DAG.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            tasks: Vec::new(),
            succs: Vec::new(),
            preds: Vec::new(),
        }
    }

    /// Adds a task and returns its id.
    pub fn add_task(
        &mut self,
        name: impl Into<String>,
        nodes: u64,
        duration: f64,
    ) -> Result<TaskId, DagError> {
        let name = name.into();
        if self.tasks.iter().any(|t| t.name == name) {
            return Err(DagError::DuplicateName(name));
        }
        if nodes == 0 {
            return Err(DagError::InvalidTask(format!("{name}: zero nodes")));
        }
        if !(duration.is_finite() && duration >= 0.0) {
            return Err(DagError::InvalidTask(format!(
                "{name}: duration must be finite and non-negative, got {duration}"
            )));
        }
        let id = TaskId(self.tasks.len());
        self.tasks.push(Task {
            name,
            nodes,
            duration,
        });
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        Ok(id)
    }

    /// Declares that `before` must complete before `after` starts.
    /// Duplicate edges are ignored.
    pub fn add_dep(&mut self, before: TaskId, after: TaskId) -> Result<(), DagError> {
        if before.0 >= self.tasks.len() {
            return Err(DagError::UnknownTask(before));
        }
        if after.0 >= self.tasks.len() {
            return Err(DagError::UnknownTask(after));
        }
        if before == after {
            return Err(DagError::SelfDependency(self.tasks[before.0].name.clone()));
        }
        if !self.succs[before.0].contains(&after) {
            self.succs[before.0].push(after);
            self.preds[after.0].push(before);
        }
        Ok(())
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when the DAG has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The task with the given id.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0]
    }

    /// Mutable access to a task (e.g. to record a measured duration).
    pub fn task_mut(&mut self, id: TaskId) -> &mut Task {
        &mut self.tasks[id.0]
    }

    /// Looks a task up by name.
    pub fn task_by_name(&self, name: &str) -> Option<TaskId> {
        self.tasks.iter().position(|t| t.name == name).map(TaskId)
    }

    /// All task ids in insertion order.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len()).map(TaskId)
    }

    /// All tasks in insertion order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Direct successors of a task.
    pub fn successors(&self, id: TaskId) -> &[TaskId] {
        &self.succs[id.0]
    }

    /// Direct predecessors of a task.
    pub fn predecessors(&self, id: TaskId) -> &[TaskId] {
        &self.preds[id.0]
    }

    /// Tasks with no predecessors.
    pub fn roots(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|id| self.preds[id.0].is_empty())
            .collect()
    }

    /// Tasks with no successors.
    pub fn leaves(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|id| self.succs[id.0].is_empty())
            .collect()
    }

    /// Kahn topological order; fails with [`DagError::Cycle`] if the graph
    /// has one.
    pub fn topo_order(&self) -> Result<Vec<TaskId>, DagError> {
        let mut indegree: Vec<usize> = self.preds.iter().map(Vec::len).collect();
        let mut queue: Vec<TaskId> = self.task_ids().filter(|id| indegree[id.0] == 0).collect();
        let mut order = Vec::with_capacity(self.len());
        let mut head = 0;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            order.push(id);
            for &s in &self.succs[id.0] {
                indegree[s.0] -= 1;
                if indegree[s.0] == 0 {
                    queue.push(s);
                }
            }
        }
        if order.len() == self.len() {
            Ok(order)
        } else {
            let stuck = self
                .task_ids()
                .find(|id| indegree[id.0] > 0)
                .expect("a cycle leaves some task with positive indegree");
            Err(DagError::Cycle(self.tasks[stuck.0].name.clone()))
        }
    }

    /// Validates acyclicity.
    pub fn validate(&self) -> Result<(), DagError> {
        self.topo_order().map(|_| ())
    }

    /// The level of each task: roots are level 0, otherwise
    /// `1 + max(level of predecessors)`. Matches the paper's skeleton
    /// figures ("five parallel tasks at level 0").
    pub fn levels(&self) -> Result<Vec<usize>, DagError> {
        let order = self.topo_order()?;
        let mut level = vec![0usize; self.len()];
        for id in order {
            for &p in &self.preds[id.0] {
                level[id.0] = level[id.0].max(level[p.0] + 1);
            }
        }
        Ok(level)
    }

    /// Tasks grouped by level, in level order.
    pub fn level_groups(&self) -> Result<Vec<Vec<TaskId>>, DagError> {
        let levels = self.levels()?;
        let depth = levels.iter().copied().max().map_or(0, |m| m + 1);
        let mut groups = vec![Vec::new(); depth];
        for id in self.task_ids() {
            groups[levels[id.0]].push(id);
        }
        Ok(groups)
    }

    /// Critical path *length*: number of levels (LCLS: 2).
    pub fn critical_path_length(&self) -> Result<usize, DagError> {
        Ok(self.level_groups()?.len())
    }

    /// Maximum number of tasks at any level: the structural "number of
    /// parallel tasks" the model uses as its x coordinate.
    pub fn max_width(&self) -> Result<usize, DagError> {
        Ok(self.level_groups()?.iter().map(Vec::len).max().unwrap_or(0))
    }

    /// The critical path by *duration*: the dependency chain with the
    /// largest total duration, and that total.
    pub fn critical_path(&self) -> Result<(Vec<TaskId>, f64), DagError> {
        let order = self.topo_order()?;
        let mut dist: Vec<f64> = vec![0.0; self.len()];
        let mut via: Vec<Option<TaskId>> = vec![None; self.len()];
        for &id in &order {
            let d = dist[id.0] + self.tasks[id.0].duration;
            for &s in &self.succs[id.0] {
                if d > dist[s.0] {
                    dist[s.0] = d;
                    via[s.0] = Some(id);
                }
            }
        }
        let Some(end) = self.task_ids().max_by(|a, b| {
            let fa = dist[a.0] + self.tasks[a.0].duration;
            let fb = dist[b.0] + self.tasks[b.0].duration;
            fa.partial_cmp(&fb).expect("durations are finite")
        }) else {
            return Ok((Vec::new(), 0.0));
        };
        let total = dist[end.0] + self.tasks[end.0].duration;
        let mut path = vec![end];
        let mut cur = end;
        while let Some(p) = via[cur.0] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Ok((path, total))
    }

    /// Edges implied by transitivity: `(u, v)` such that removing the
    /// direct edge `u -> v` leaves `v` still reachable from `u`. These
    /// are exactly the edges a transitive reduction would drop; a spec
    /// declaring them is over-constrained but not wrong.
    ///
    /// Runs in O(V·E/64) via reverse-topological bitset reachability.
    pub fn redundant_edges(&self) -> Result<Vec<(TaskId, TaskId)>, DagError> {
        let order = self.topo_order()?;
        let n = self.len();
        let words = n.div_ceil(64);
        // reach[v] = v itself plus everything reachable from v.
        let mut reach = vec![vec![0u64; words]; n];
        for &v in order.iter().rev() {
            reach[v.0][v.0 / 64] |= 1 << (v.0 % 64);
            for &s in &self.succs[v.0] {
                let (head, tail) = if v.0 < s.0 {
                    let (a, b) = reach.split_at_mut(s.0);
                    (&mut a[v.0], &b[0])
                } else {
                    let (a, b) = reach.split_at_mut(v.0);
                    (&mut b[0], &a[s.0])
                };
                for (h, t) in head.iter_mut().zip(tail) {
                    *h |= t;
                }
            }
        }
        let mut out = Vec::new();
        for u in self.task_ids() {
            for &v in &self.succs[u.0] {
                // u -> v is redundant iff some *other* successor of u
                // already reaches v (no path revisits v in a DAG).
                let implied = self.succs[u.0]
                    .iter()
                    .any(|&w| w != v && reach[w.0][v.0 / 64] & (1 << (v.0 % 64)) != 0);
                if implied {
                    out.push((u, v));
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Sum of all task durations (serial work).
    pub fn total_duration(&self) -> f64 {
        self.tasks.iter().map(|t| t.duration).sum()
    }

    /// Sum of `nodes x duration` over all tasks (node-seconds of
    /// allocation).
    pub fn total_node_seconds(&self) -> f64 {
        self.tasks.iter().map(|t| t.nodes as f64 * t.duration).sum()
    }

    /// The largest node requirement of any single task.
    pub fn max_task_nodes(&self) -> u64 {
        self.tasks.iter().map(|t| t.nodes).max().unwrap_or(0)
    }

    /// Counts of tasks per name prefix, a convenience for reports.
    pub fn name_histogram(&self) -> BTreeMap<String, usize> {
        let mut h = BTreeMap::new();
        for t in &self.tasks {
            let key = t
                .name
                .split(['[', '.', '#'])
                .next()
                .unwrap_or(&t.name)
                .to_owned();
            *h.entry(key).or_insert(0) += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The LCLS skeleton of Fig. 4: A..E in parallel, F merges.
    fn lcls() -> Dag {
        let mut d = Dag::new("LCLS");
        let analyses: Vec<TaskId> = (0..5)
            .map(|i| d.add_task(format!("analyze[{i}]"), 32, 1000.0).unwrap())
            .collect();
        let merge = d.add_task("merge", 1, 20.0).unwrap();
        for a in analyses {
            d.add_dep(a, merge).unwrap();
        }
        d
    }

    #[test]
    fn lcls_structure_matches_fig4() {
        let d = lcls();
        assert_eq!(d.len(), 6);
        assert_eq!(d.critical_path_length().unwrap(), 2);
        assert_eq!(d.max_width().unwrap(), 5);
        assert_eq!(d.roots().len(), 5);
        assert_eq!(d.leaves(), vec![TaskId(5)]);
        let groups = d.level_groups().unwrap();
        assert_eq!(groups[0].len(), 5);
        assert_eq!(groups[1], vec![TaskId(5)]);
    }

    #[test]
    fn critical_path_by_duration() {
        let d = lcls();
        let (path, total) = d.critical_path().unwrap();
        assert_eq!(path.len(), 2);
        assert!((total - 1020.0).abs() < 1e-9);
        assert_eq!(d.task(path[1]).name, "merge");
    }

    #[test]
    fn chain_critical_path() {
        // BGW: Epsilon -> Sigma.
        let mut d = Dag::new("BGW");
        let e = d.add_task("Epsilon", 64, 1200.0).unwrap();
        let s = d.add_task("Sigma", 64, 2985.0).unwrap();
        d.add_dep(e, s).unwrap();
        assert_eq!(d.critical_path_length().unwrap(), 2);
        assert_eq!(d.max_width().unwrap(), 1);
        let (path, total) = d.critical_path().unwrap();
        assert_eq!(path, vec![e, s]);
        assert!((total - 4185.0).abs() < 1e-9);
        assert!((d.total_node_seconds() - 64.0 * 4185.0).abs() < 1e-6);
    }

    #[test]
    fn cycle_is_detected() {
        let mut d = Dag::new("c");
        let a = d.add_task("a", 1, 1.0).unwrap();
        let b = d.add_task("b", 1, 1.0).unwrap();
        d.add_dep(a, b).unwrap();
        d.add_dep(b, a).unwrap();
        assert!(matches!(d.topo_order(), Err(DagError::Cycle(_))));
        assert!(d.validate().is_err());
        assert!(d.levels().is_err());
    }

    #[test]
    fn construction_errors() {
        let mut d = Dag::new("e");
        let a = d.add_task("a", 1, 1.0).unwrap();
        assert!(matches!(
            d.add_task("a", 1, 1.0),
            Err(DagError::DuplicateName(_))
        ));
        assert!(d.add_task("z", 0, 1.0).is_err());
        assert!(d.add_task("n", 1, f64::NAN).is_err());
        assert!(d.add_task("neg", 1, -1.0).is_err());
        assert!(matches!(d.add_dep(a, a), Err(DagError::SelfDependency(_))));
        assert!(matches!(
            d.add_dep(a, TaskId(99)),
            Err(DagError::UnknownTask(_))
        ));
    }

    #[test]
    fn duplicate_edges_are_idempotent() {
        let mut d = Dag::new("d");
        let a = d.add_task("a", 1, 1.0).unwrap();
        let b = d.add_task("b", 1, 1.0).unwrap();
        d.add_dep(a, b).unwrap();
        d.add_dep(a, b).unwrap();
        assert_eq!(d.successors(a), &[b]);
        assert_eq!(d.predecessors(b), &[a]);
    }

    #[test]
    fn topo_order_respects_edges() {
        let d = lcls();
        let order = d.topo_order().unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; d.len()];
            for (i, id) in order.iter().enumerate() {
                p[id.0] = i;
            }
            p
        };
        for id in d.task_ids() {
            for &s in d.successors(id) {
                assert!(pos[id.0] < pos[s.0]);
            }
        }
    }

    #[test]
    fn empty_dag() {
        let d = Dag::new("empty");
        assert!(d.is_empty());
        assert_eq!(d.critical_path().unwrap(), (Vec::new(), 0.0));
        assert_eq!(d.max_width().unwrap(), 0);
        assert_eq!(d.critical_path_length().unwrap(), 0);
        assert_eq!(d.max_task_nodes(), 0);
    }

    #[test]
    fn name_lookup_and_histogram() {
        let d = lcls();
        assert_eq!(d.task_by_name("merge"), Some(TaskId(5)));
        assert_eq!(d.task_by_name("nope"), None);
        let h = d.name_histogram();
        assert_eq!(h.get("analyze"), Some(&5));
        assert_eq!(h.get("merge"), Some(&1));
    }

    #[test]
    fn redundant_edges_match_the_transitive_reduction() {
        // a -> b -> c with a direct a -> c shortcut: only the shortcut
        // is redundant.
        let mut d = Dag::new("r");
        let a = d.add_task("a", 1, 1.0).unwrap();
        let b = d.add_task("b", 1, 1.0).unwrap();
        let c = d.add_task("c", 1, 1.0).unwrap();
        d.add_dep(a, b).unwrap();
        d.add_dep(b, c).unwrap();
        d.add_dep(a, c).unwrap();
        assert_eq!(d.redundant_edges().unwrap(), vec![(a, c)]);
        // A diamond has no redundant edges: both arms are needed.
        let mut d = Dag::new("diamond");
        let a = d.add_task("a", 1, 1.0).unwrap();
        let b = d.add_task("b", 1, 1.0).unwrap();
        let c = d.add_task("c", 1, 1.0).unwrap();
        let e = d.add_task("e", 1, 1.0).unwrap();
        d.add_dep(a, b).unwrap();
        d.add_dep(a, c).unwrap();
        d.add_dep(b, e).unwrap();
        d.add_dep(c, e).unwrap();
        assert!(d.redundant_edges().unwrap().is_empty());
        // Longer shortcut: a -> b -> c -> d plus a -> d.
        let mut g = Dag::new("long");
        let a = g.add_task("a", 1, 1.0).unwrap();
        let b = g.add_task("b", 1, 1.0).unwrap();
        let c = g.add_task("c", 1, 1.0).unwrap();
        let e = g.add_task("d", 1, 1.0).unwrap();
        g.add_dep(a, b).unwrap();
        g.add_dep(b, c).unwrap();
        g.add_dep(c, e).unwrap();
        g.add_dep(a, e).unwrap();
        assert_eq!(g.redundant_edges().unwrap(), vec![(a, e)]);
        // Cycles propagate the topo error.
        let mut g = Dag::new("cyc");
        let a = g.add_task("a", 1, 1.0).unwrap();
        let b = g.add_task("b", 1, 1.0).unwrap();
        g.add_dep(a, b).unwrap();
        g.add_dep(b, a).unwrap();
        assert!(g.redundant_edges().is_err());
    }

    #[test]
    fn task_mut_updates_duration() {
        let mut d = lcls();
        let id = d.task_by_name("merge").unwrap();
        d.task_mut(id).duration = 60.0;
        let (_, total) = d.critical_path().unwrap();
        assert!((total - 1060.0).abs() < 1e-9);
    }
}
