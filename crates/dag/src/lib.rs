//! # wrm-dag — workflow task graphs for the Workflow Roofline Model
//!
//! Workflow skeletons (paper Fig. 4 / Fig. 9) as DAGs of tasks with node
//! requirements and durations, plus the derived structure the model
//! needs: levels, widths (the "number of parallel tasks"), critical
//! paths, resource-constrained schedules, and Gantt charts (Fig. 7d).
//!
//! ```
//! use wrm_dag::{Dag, list_schedule, Policy, GanttChart};
//!
//! // The LCLS skeleton: five 32-node analyses, then a merge.
//! let mut dag = Dag::new("LCLS");
//! let merge = dag.add_task("merge", 1, 20.0).unwrap();
//! for i in 0..5 {
//!     let a = dag.add_task(format!("analyze[{i}]"), 32, 1000.0).unwrap();
//!     dag.add_dep(a, merge).unwrap();
//! }
//! assert_eq!(dag.max_width().unwrap(), 5);
//! assert_eq!(dag.critical_path_length().unwrap(), 2);
//!
//! let schedule = list_schedule(&dag, 2388, Policy::Fifo).unwrap();
//! let gantt = GanttChart::build(&dag, &schedule).unwrap();
//! assert!((gantt.makespan - 1020.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod csr;
pub mod gantt;
pub mod generate;
pub mod graph;
pub mod profile;
pub mod schedule;

pub use csr::{longest_path_ends, max_coschedulable, resource_work};
pub use gantt::{GanttChart, GanttRow};
pub use graph::{Dag, DagError, Task, TaskId};
pub use profile::{ParallelismProfile, ProfileStep};
pub use schedule::{list_schedule, Policy, Schedule, ScheduleError, Span};
