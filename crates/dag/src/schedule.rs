//! Resource-constrained list scheduling: places a [`Dag`]'s tasks onto a
//! fixed pool of nodes, respecting dependencies and per-task node
//! requirements.
//!
//! This is the planning-side counterpart of the simulator in `wrm-sim`:
//! the simulator *executes* phases against shared bandwidths, while the
//! scheduler answers "when could each task start at best" for Gantt charts
//! (Fig. 7d) and for the parallelism wall's practical effect.

use crate::graph::{Dag, DagError, TaskId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Task ordering policy for ready tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Policy {
    /// First-in-first-out by task id (submission order), the Slurm-like
    /// default.
    #[default]
    Fifo,
    /// Longest processing time first.
    LongestFirst,
    /// Largest upward rank first (critical-path-aware, HEFT-like).
    CriticalPathFirst,
}

/// Errors from scheduling.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// The DAG was invalid (cycle, etc.).
    Dag(DagError),
    /// A task needs more nodes than the pool holds.
    TaskTooLarge {
        /// The offending task's name.
        task: String,
        /// Its node requirement.
        needs: u64,
        /// Pool size.
        pool: u64,
    },
    /// The node pool is empty.
    EmptyPool,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Dag(e) => write!(f, "invalid dag: {e}"),
            ScheduleError::TaskTooLarge { task, needs, pool } => {
                write!(f, "task {task} needs {needs} nodes but the pool has {pool}")
            }
            ScheduleError::EmptyPool => f.write_str("node pool is empty"),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl From<DagError> for ScheduleError {
    fn from(e: DagError) -> Self {
        ScheduleError::Dag(e)
    }
}

/// One scheduled task occurrence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// The task.
    pub task: TaskId,
    /// Start time in seconds from workflow start.
    pub start: f64,
    /// End time in seconds.
    pub end: f64,
    /// Nodes held for the span.
    pub nodes: u64,
}

impl Span {
    /// Span duration.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// A complete schedule of a DAG on a node pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Spans indexed by task id.
    pub spans: Vec<Span>,
    /// Time the last task completes.
    pub makespan: f64,
    /// Pool size the schedule was computed for.
    pub total_nodes: u64,
}

impl Schedule {
    /// Node utilization: busy node-seconds over `total_nodes x makespan`.
    pub fn utilization(&self) -> f64 {
        if self.makespan <= 0.0 || self.total_nodes == 0 {
            return 0.0;
        }
        let busy: f64 = self
            .spans
            .iter()
            .map(|s| s.nodes as f64 * s.duration())
            .sum();
        busy / (self.total_nodes as f64 * self.makespan)
    }

    /// Maximum number of concurrently running tasks.
    pub fn peak_concurrency(&self) -> usize {
        let mut events: Vec<(f64, i64)> = Vec::with_capacity(self.spans.len() * 2);
        for s in &self.spans {
            if s.duration() > 0.0 {
                events.push((s.start, 1));
                events.push((s.end, -1));
            }
        }
        // Process ends before starts at the same instant.
        events.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("finite times")
                .then(a.1.cmp(&b.1))
        });
        let mut cur = 0i64;
        let mut peak = 0i64;
        for (_, d) in events {
            cur += d;
            peak = peak.max(cur);
        }
        peak as usize
    }

    /// Time-weighted average concurrency (`sum of durations / makespan`).
    pub fn avg_concurrency(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.spans.iter().map(Span::duration).sum::<f64>() / self.makespan
    }
}

fn upward_ranks(dag: &Dag) -> Result<Vec<f64>, DagError> {
    let order = dag.topo_order()?;
    let mut rank = vec![0.0f64; dag.len()];
    for &id in order.iter().rev() {
        let best_succ = dag
            .successors(id)
            .iter()
            .map(|s| rank[s.0])
            .fold(0.0f64, f64::max);
        rank[id.0] = dag.task(id).duration + best_succ;
    }
    Ok(rank)
}

/// Computes a greedy list schedule of `dag` on `total_nodes` nodes under
/// `policy`.
///
/// The scheduler is event driven: at each completion time it starts every
/// ready task that fits, in policy order (no backfilling past the head
/// beyond what node availability admits).
pub fn list_schedule(
    dag: &Dag,
    total_nodes: u64,
    policy: Policy,
) -> Result<Schedule, ScheduleError> {
    if total_nodes == 0 {
        return Err(ScheduleError::EmptyPool);
    }
    dag.validate()?;
    for id in dag.task_ids() {
        let t = dag.task(id);
        if t.nodes > total_nodes {
            return Err(ScheduleError::TaskTooLarge {
                task: t.name.clone(),
                needs: t.nodes,
                pool: total_nodes,
            });
        }
    }

    let ranks = match policy {
        Policy::CriticalPathFirst => upward_ranks(dag)?,
        _ => Vec::new(),
    };

    let n = dag.len();
    let mut remaining_preds: Vec<usize> = dag
        .task_ids()
        .map(|id| dag.predecessors(id).len())
        .collect();
    let mut ready: Vec<TaskId> = dag
        .task_ids()
        .filter(|id| remaining_preds[id.0] == 0)
        .collect();
    let mut running: Vec<(f64, TaskId)> = Vec::new(); // (end, task)
    let mut spans: Vec<Option<Span>> = vec![None; n];
    let mut free = total_nodes;
    let mut now = 0.0f64;
    let mut done = 0usize;

    let order_ready = |ready: &mut Vec<TaskId>| match policy {
        Policy::Fifo => ready.sort_by_key(|id| id.0),
        Policy::LongestFirst => ready.sort_by(|a, b| {
            dag.task(*b)
                .duration
                .partial_cmp(&dag.task(*a).duration)
                .expect("finite")
                .then(a.0.cmp(&b.0))
        }),
        Policy::CriticalPathFirst => ready.sort_by(|a, b| {
            ranks[b.0]
                .partial_cmp(&ranks[a.0])
                .expect("finite")
                .then(a.0.cmp(&b.0))
        }),
    };

    while done < n {
        // Start everything that fits, in policy order.
        order_ready(&mut ready);
        let mut i = 0;
        while i < ready.len() {
            let id = ready[i];
            let need = dag.task(id).nodes;
            if need <= free {
                free -= need;
                let dur = dag.task(id).duration;
                spans[id.0] = Some(Span {
                    task: id,
                    start: now,
                    end: now + dur,
                    nodes: need,
                });
                running.push((now + dur, id));
                ready.remove(i);
            } else {
                i += 1;
            }
        }

        if running.is_empty() {
            // Nothing runs and nothing fits: impossible, since every task
            // fits in the pool and ready tasks always start when the pool
            // is idle.
            debug_assert!(ready.is_empty());
            break;
        }

        // Advance to the earliest completion.
        running.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
        let (end, _) = *running.last().expect("non-empty");
        now = end;
        while let Some(&(e, id)) = running.last() {
            if e > now {
                break;
            }
            running.pop();
            free += dag.task(id).nodes;
            done += 1;
            for &s in dag.successors(id) {
                remaining_preds[s.0] -= 1;
                if remaining_preds[s.0] == 0 {
                    ready.push(s);
                }
            }
        }
    }

    let spans: Vec<Span> = spans
        .into_iter()
        .map(|s| s.expect("every task scheduled"))
        .collect();
    let makespan = spans.iter().map(|s| s.end).fold(0.0, f64::max);
    Ok(Schedule {
        spans,
        makespan,
        total_nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcls() -> Dag {
        let mut d = Dag::new("LCLS");
        let analyses: Vec<TaskId> = (0..5)
            .map(|i| d.add_task(format!("analyze[{i}]"), 32, 1000.0).unwrap())
            .collect();
        let merge = d.add_task("merge", 1, 20.0).unwrap();
        for a in analyses {
            d.add_dep(a, merge).unwrap();
        }
        d
    }

    #[test]
    fn wide_pool_runs_level0_in_parallel() {
        let d = lcls();
        let s = list_schedule(&d, 160, Policy::Fifo).unwrap();
        assert!((s.makespan - 1020.0).abs() < 1e-9);
        assert_eq!(s.peak_concurrency(), 5);
        // The merge starts exactly when the analyses end.
        let merge = d.task_by_name("merge").unwrap();
        assert!((s.spans[merge.0].start - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn narrow_pool_serializes() {
        let d = lcls();
        // Only one 32-node analysis fits at a time.
        let s = list_schedule(&d, 32, Policy::Fifo).unwrap();
        assert!((s.makespan - 5020.0).abs() < 1e-9);
        assert_eq!(s.peak_concurrency(), 1);
        // Utilization is nearly 1 (the 1-node merge wastes 31 nodes briefly).
        assert!(s.utilization() > 0.95);
    }

    #[test]
    fn half_pool_runs_two_waves() {
        let d = lcls();
        // 64 nodes: two analyses at a time -> waves of 2,2,1 then merge.
        let s = list_schedule(&d, 64, Policy::Fifo).unwrap();
        assert!((s.makespan - 3020.0).abs() < 1e-9);
        assert_eq!(s.peak_concurrency(), 2);
    }

    #[test]
    fn dependencies_are_respected() {
        let mut d = Dag::new("chain");
        let a = d.add_task("a", 2, 5.0).unwrap();
        let b = d.add_task("b", 2, 3.0).unwrap();
        d.add_dep(a, b).unwrap();
        let s = list_schedule(&d, 100, Policy::Fifo).unwrap();
        assert!(s.spans[b.0].start >= s.spans[a.0].end - 1e-12);
        assert!((s.makespan - 8.0).abs() < 1e-9);
    }

    #[test]
    fn node_capacity_is_never_exceeded() {
        let mut d = Dag::new("pack");
        for i in 0..10 {
            d.add_task(format!("t{i}"), 3, 7.0).unwrap();
        }
        let s = list_schedule(&d, 10, Policy::Fifo).unwrap();
        // 3 tasks fit at once (9 nodes): 10 tasks -> 4 waves.
        assert!((s.makespan - 28.0).abs() < 1e-9);
        assert_eq!(s.peak_concurrency(), 3);
    }

    #[test]
    fn longest_first_beats_fifo_on_adversarial_input() {
        let mut d = Dag::new("adv");
        // One long task and many short ones; FIFO starts the short ones
        // first and the long task tail-ends the makespan.
        for i in 0..4 {
            d.add_task(format!("short{i}"), 1, 1.0).unwrap();
        }
        d.add_task("long", 1, 10.0).unwrap();
        let fifo = list_schedule(&d, 2, Policy::Fifo).unwrap();
        let lpt = list_schedule(&d, 2, Policy::LongestFirst).unwrap();
        assert!(lpt.makespan <= fifo.makespan);
        assert!((lpt.makespan - 10.0).abs() < 1e-9);
        assert!((fifo.makespan - 12.0).abs() < 1e-9);
    }

    #[test]
    fn critical_path_first_prioritizes_deep_chains() {
        let mut d = Dag::new("cp");
        // A deep chain a->b->c (durations 1 each) and a shallow heavy task.
        let a = d.add_task("a", 1, 1.0).unwrap();
        let b = d.add_task("b", 1, 1.0).unwrap();
        let c = d.add_task("c", 1, 1.0).unwrap();
        d.add_dep(a, b).unwrap();
        d.add_dep(b, c).unwrap();
        d.add_task("heavy", 1, 2.5).unwrap();
        let cp = list_schedule(&d, 1, Policy::CriticalPathFirst).unwrap();
        // Chain head rank 3.0 > heavy 2.5, so `a` runs first; after it,
        // the greedy pass prefers heavy (2.5) over b (2.0).
        assert!((cp.spans[a.0].start - 0.0).abs() < 1e-12);
        let heavy = d.task_by_name("heavy").unwrap();
        assert!((cp.spans[heavy.0].start - 1.0).abs() < 1e-9);
        assert!((cp.spans[b.0].start - 3.5).abs() < 1e-9);
        assert!((cp.spans[c.0].start - 4.5).abs() < 1e-9);
    }

    #[test]
    fn errors() {
        let d = lcls();
        assert!(matches!(
            list_schedule(&d, 0, Policy::Fifo),
            Err(ScheduleError::EmptyPool)
        ));
        assert!(matches!(
            list_schedule(&d, 16, Policy::Fifo),
            Err(ScheduleError::TaskTooLarge { .. })
        ));
        let mut cyc = Dag::new("c");
        let a = cyc.add_task("a", 1, 1.0).unwrap();
        let b = cyc.add_task("b", 1, 1.0).unwrap();
        cyc.add_dep(a, b).unwrap();
        cyc.add_dep(b, a).unwrap();
        assert!(matches!(
            list_schedule(&cyc, 4, Policy::Fifo),
            Err(ScheduleError::Dag(_))
        ));
    }

    #[test]
    fn zero_duration_tasks_complete() {
        let mut d = Dag::new("z");
        let a = d.add_task("a", 1, 0.0).unwrap();
        let b = d.add_task("b", 1, 1.0).unwrap();
        d.add_dep(a, b).unwrap();
        let s = list_schedule(&d, 1, Policy::Fifo).unwrap();
        assert!((s.makespan - 1.0).abs() < 1e-12);
        assert_eq!(s.peak_concurrency(), 1); // zero-length spans ignored
    }

    #[test]
    fn concurrency_metrics_on_empty_schedule() {
        let d = Dag::new("empty");
        let s = list_schedule(&d, 4, Policy::Fifo).unwrap();
        assert_eq!(s.makespan, 0.0);
        assert_eq!(s.peak_concurrency(), 0);
        assert_eq!(s.avg_concurrency(), 0.0);
        assert_eq!(s.utilization(), 0.0);
    }
}
