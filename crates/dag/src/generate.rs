//! Synthetic DAG generators: the workflow archetypes of the paper's
//! introduction (bags of tasks, chains, map-reduce/ensemble-merge,
//! iterative chains) plus a seeded random layered DAG for property tests
//! and benchmarks.

use crate::graph::{Dag, DagError, TaskId};

/// `n` independent tasks (a bag of tasks / ensemble).
pub fn bag_of_tasks(n: usize, nodes: u64, duration: f64) -> Result<Dag, DagError> {
    let mut d = Dag::new(format!("bag[{n}]"));
    for i in 0..n {
        d.add_task(format!("task[{i}]"), nodes, duration)?;
    }
    Ok(d)
}

/// A linear chain of `n` tasks (BGW-like multi-stage pipelines).
pub fn chain(n: usize, nodes: u64, duration: f64) -> Result<Dag, DagError> {
    let mut d = Dag::new(format!("chain[{n}]"));
    let mut prev: Option<TaskId> = None;
    for i in 0..n {
        let id = d.add_task(format!("stage[{i}]"), nodes, duration)?;
        if let Some(p) = prev {
            d.add_dep(p, id)?;
        }
        prev = Some(id);
    }
    Ok(d)
}

/// `width` parallel workers followed by one merge task (the LCLS
/// skeleton of Fig. 4).
pub fn fork_join(
    width: usize,
    worker_nodes: u64,
    worker_duration: f64,
    merge_duration: f64,
) -> Result<Dag, DagError> {
    let mut d = Dag::new(format!("fork-join[{width}]"));
    let workers: Vec<TaskId> = (0..width)
        .map(|i| d.add_task(format!("worker[{i}]"), worker_nodes, worker_duration))
        .collect::<Result<_, _>>()?;
    let merge = d.add_task("merge", 1, merge_duration)?;
    for w in workers {
        d.add_dep(w, merge)?;
    }
    Ok(d)
}

/// An iterative map-reduce: `iters` rounds of `width` mappers feeding one
/// reducer, each round gated on the previous reducer (Pregel-like
/// iterative chains of MapReduce jobs).
pub fn iterative_map_reduce(
    iters: usize,
    width: usize,
    map_nodes: u64,
    map_duration: f64,
    reduce_duration: f64,
) -> Result<Dag, DagError> {
    let mut d = Dag::new(format!("mapreduce[{iters}x{width}]"));
    let mut prev_reduce: Option<TaskId> = None;
    for it in 0..iters {
        let mappers: Vec<TaskId> = (0..width)
            .map(|i| d.add_task(format!("map[{it}.{i}]"), map_nodes, map_duration))
            .collect::<Result<_, _>>()?;
        let reduce = d.add_task(format!("reduce[{it}]"), 1, reduce_duration)?;
        for &m in &mappers {
            if let Some(r) = prev_reduce {
                d.add_dep(r, m)?;
            }
            d.add_dep(m, reduce)?;
        }
        prev_reduce = Some(reduce);
    }
    Ok(d)
}

/// A deterministic pseudo-random layered DAG: `layers` levels of up to
/// `max_width` tasks; each non-root task depends on 1..=3 tasks of the
/// previous layer. Uses a splitmix64 stream from `seed`, so identical
/// seeds give identical graphs without pulling a RNG dependency into the
/// library.
pub fn random_layered(
    seed: u64,
    layers: usize,
    max_width: usize,
    max_nodes: u64,
    max_duration: f64,
) -> Result<Dag, DagError> {
    assert!(max_width >= 1, "max_width must be at least 1");
    assert!(max_nodes >= 1, "max_nodes must be at least 1");
    let mut state = seed;
    let mut next = move || -> u64 {
        // splitmix64
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let mut d = Dag::new(format!("random[{seed}]"));
    let mut prev_layer: Vec<TaskId> = Vec::new();
    for layer in 0..layers {
        let width = 1 + (next() as usize) % max_width;
        let mut cur = Vec::with_capacity(width);
        for i in 0..width {
            let nodes = 1 + next() % max_nodes;
            let duration = (next() % 1_000_000) as f64 / 1_000_000.0 * max_duration;
            let id = d.add_task(format!("t[{layer}.{i}]"), nodes, duration)?;
            if !prev_layer.is_empty() {
                let deps = 1 + (next() as usize) % 3.min(prev_layer.len());
                for k in 0..deps {
                    let p = prev_layer[(next() as usize + k) % prev_layer.len()];
                    d.add_dep(p, id)?;
                }
            }
            cur.push(id);
        }
        prev_layer = cur;
    }
    Ok(d)
}

/// One task of a generated workload, as plain data: consumers (e.g. the
/// benchmark crate) attach their own phase structure.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedTask {
    /// Unique task name (`t[layer.slot]`).
    pub name: String,
    /// Node allocation.
    pub nodes: u64,
    /// Nominal duration in seconds (uniform in `(0, max_duration)`).
    pub duration: f64,
    /// Indices (into the returned vector) of tasks this one depends on;
    /// always earlier indices, so the list is topologically ordered.
    pub deps: Vec<usize>,
}

/// A deterministic pseudo-random layered workload with exactly
/// `n_tasks` tasks, as plain task records rather than a [`Dag`] — the
/// form large-scale benchmark workloads are built from. Layer widths are
/// drawn in `1..=max_width` until the task budget is exhausted; each
/// non-root task depends on 1..=3 tasks of the previous layer. Uses its
/// own splitmix64 stream from `seed` (independent of
/// [`random_layered`]), so identical seeds give identical workloads.
pub fn random_layered_tasks(
    seed: u64,
    n_tasks: usize,
    max_width: usize,
    max_nodes: u64,
    max_duration: f64,
) -> Vec<GeneratedTask> {
    assert!(max_width >= 1, "max_width must be at least 1");
    assert!(max_nodes >= 1, "max_nodes must be at least 1");
    let mut state = seed ^ 0xA076_1D64_78BD_642F;
    let mut next = move || -> u64 {
        // splitmix64
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let mut tasks = Vec::with_capacity(n_tasks);
    let mut prev_layer: Vec<usize> = Vec::new();
    let mut layer = 0usize;
    while tasks.len() < n_tasks {
        let width = (1 + (next() as usize) % max_width).min(n_tasks - tasks.len());
        let mut cur = Vec::with_capacity(width);
        for i in 0..width {
            let nodes = 1 + next() % max_nodes;
            let duration = (next() % 1_000_000) as f64 / 1_000_000.0 * max_duration;
            let mut deps = Vec::new();
            if !prev_layer.is_empty() {
                let n_deps = 1 + (next() as usize) % 3.min(prev_layer.len());
                for k in 0..n_deps {
                    let p = prev_layer[(next() as usize + k) % prev_layer.len()];
                    if !deps.contains(&p) {
                        deps.push(p);
                    }
                }
            }
            let id = tasks.len();
            tasks.push(GeneratedTask {
                name: format!("t[{layer}.{i}]"),
                nodes,
                duration,
                deps,
            });
            cur.push(id);
        }
        prev_layer = cur;
        layer += 1;
    }
    tasks
}

/// A deterministic pseudo-random repeated fork–join workload with
/// exactly `n_tasks` tasks, as plain task records: rounds of `fork ->
/// width workers -> join`, each round's fork gated on the previous join
/// (the LCLS shape of Fig. 4, tiled until the budget is exhausted —
/// wide barriers are the worst case for a completion calendar, since
/// every worker of a round finishes into the same join). Widths are
/// drawn in `1..=max_width` per round; worker node counts in
/// `1..=max_nodes`; fork/join tasks take one node. Uses its own
/// splitmix64 stream from `seed`, so identical seeds give identical
/// workloads.
pub fn fork_join_tasks(
    seed: u64,
    n_tasks: usize,
    max_width: usize,
    max_nodes: u64,
    max_duration: f64,
) -> Vec<GeneratedTask> {
    assert!(max_width >= 1, "max_width must be at least 1");
    assert!(max_nodes >= 1, "max_nodes must be at least 1");
    let mut state = seed ^ 0x5851_F42D_4C95_7F2D;
    let mut next = move || -> u64 {
        // splitmix64
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let mut tasks: Vec<GeneratedTask> = Vec::with_capacity(n_tasks);
    let mut prev_join: Option<usize> = None;
    let mut round = 0usize;
    while tasks.len() < n_tasks {
        let budget = n_tasks - tasks.len();
        let fork = tasks.len();
        tasks.push(GeneratedTask {
            name: format!("fork[{round}]"),
            nodes: 1,
            duration: (next() % 1_000_000) as f64 / 1_000_000.0 * max_duration,
            deps: prev_join.into_iter().collect(),
        });
        // Reserve one slot for the join; degenerate tails become a chain.
        let width = (1 + (next() as usize) % max_width).min(budget.saturating_sub(2));
        let mut workers = Vec::with_capacity(width);
        for i in 0..width {
            let id = tasks.len();
            tasks.push(GeneratedTask {
                name: format!("work[{round}.{i}]"),
                nodes: 1 + next() % max_nodes,
                duration: (next() % 1_000_000) as f64 / 1_000_000.0 * max_duration,
                deps: vec![fork],
            });
            workers.push(id);
        }
        if tasks.len() < n_tasks {
            let join = tasks.len();
            tasks.push(GeneratedTask {
                name: format!("join[{round}]"),
                nodes: 1,
                duration: (next() % 1_000_000) as f64 / 1_000_000.0 * max_duration,
                deps: if workers.is_empty() {
                    vec![fork]
                } else {
                    workers
                },
            });
            prev_join = Some(join);
        } else {
            prev_join = Some(fork);
        }
        round += 1;
    }
    tasks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bag_has_width_n_depth_1() {
        let d = bag_of_tasks(7, 2, 5.0).unwrap();
        assert_eq!(d.len(), 7);
        assert_eq!(d.max_width().unwrap(), 7);
        assert_eq!(d.critical_path_length().unwrap(), 1);
    }

    #[test]
    fn chain_has_width_1_depth_n() {
        let d = chain(9, 4, 2.0).unwrap();
        assert_eq!(d.max_width().unwrap(), 1);
        assert_eq!(d.critical_path_length().unwrap(), 9);
        let (_, total) = d.critical_path().unwrap();
        assert!((total - 18.0).abs() < 1e-9);
    }

    #[test]
    fn fork_join_matches_lcls_shape() {
        let d = fork_join(5, 32, 1000.0, 20.0).unwrap();
        assert_eq!(d.len(), 6);
        assert_eq!(d.max_width().unwrap(), 5);
        assert_eq!(d.critical_path_length().unwrap(), 2);
    }

    #[test]
    fn map_reduce_rounds_are_gated() {
        let d = iterative_map_reduce(3, 4, 1, 10.0, 1.0).unwrap();
        assert_eq!(d.len(), 3 * 5);
        assert_eq!(d.critical_path_length().unwrap(), 6);
        let (_, total) = d.critical_path().unwrap();
        assert!((total - 33.0).abs() < 1e-9);
    }

    #[test]
    fn random_layered_is_deterministic_and_acyclic() {
        let a = random_layered(42, 8, 6, 16, 100.0).unwrap();
        let b = random_layered(42, 8, 6, 16, 100.0).unwrap();
        assert_eq!(a, b);
        a.validate().unwrap();
        assert_eq!(a.critical_path_length().unwrap(), 8);
        let c = random_layered(43, 8, 6, 16, 100.0).unwrap();
        assert!(a != c);
    }

    #[test]
    fn layered_tasks_hit_the_budget_exactly() {
        for n in [1, 2, 17, 1000] {
            let tasks = random_layered_tasks(9, n, 8, 4, 50.0);
            assert_eq!(tasks.len(), n);
            // Deterministic per seed, topologically ordered deps.
            assert_eq!(tasks, random_layered_tasks(9, n, 8, 4, 50.0));
            for (i, t) in tasks.iter().enumerate() {
                assert!(t.deps.iter().all(|&d| d < i));
                assert!(t.nodes >= 1 && t.nodes <= 4);
                assert!(t.duration >= 0.0 && t.duration < 50.0);
            }
        }
        // Names are unique.
        let tasks = random_layered_tasks(3, 500, 8, 4, 50.0);
        let names: std::collections::BTreeSet<&str> =
            tasks.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names.len(), tasks.len());
        // Different seeds differ.
        assert!(
            random_layered_tasks(3, 100, 8, 4, 50.0) != random_layered_tasks(4, 100, 8, 4, 50.0)
        );
    }

    #[test]
    fn fork_join_tasks_hit_the_budget_exactly() {
        for n in [1, 2, 3, 4, 17, 1000] {
            let tasks = fork_join_tasks(11, n, 16, 8, 30.0);
            assert_eq!(tasks.len(), n);
            assert_eq!(tasks, fork_join_tasks(11, n, 16, 8, 30.0));
            for (i, t) in tasks.iter().enumerate() {
                assert!(t.deps.iter().all(|&d| d < i), "topological order");
                assert!(t.nodes >= 1 && t.nodes <= 8);
                assert!(t.duration >= 0.0 && t.duration < 30.0);
            }
        }
        // Names are unique, and the barrier shape is present: some join
        // depends on more than one worker.
        let tasks = fork_join_tasks(11, 500, 16, 8, 30.0);
        let names: std::collections::BTreeSet<&str> =
            tasks.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names.len(), tasks.len());
        assert!(tasks.iter().any(|t| t.deps.len() > 1));
        // Every round is gated on the previous one: exactly one root.
        assert_eq!(tasks.iter().filter(|t| t.deps.is_empty()).count(), 1);
        assert!(fork_join_tasks(1, 100, 8, 4, 50.0) != fork_join_tasks(2, 100, 8, 4, 50.0));
    }

    #[test]
    fn degenerate_sizes() {
        assert!(bag_of_tasks(0, 1, 1.0).unwrap().is_empty());
        assert!(chain(0, 1, 1.0).unwrap().is_empty());
        let one = random_layered(7, 1, 1, 1, 1.0).unwrap();
        assert_eq!(one.len(), 1);
    }
}
