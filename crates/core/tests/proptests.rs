//! Property-based tests for the Workflow Roofline algebra.

use proptest::prelude::*;
use wrm_core::analysis::{classify_point, scale_intra_task_parallelism, widen_batch};
use wrm_core::{
    ids, machines, Bytes, Flops, RooflineModel, Seconds, TasksPerSec, Work,
    WorkflowCharacterization,
};

prop_compose! {
    /// A random but valid workflow characterization on PM-GPU resources.
    fn charz()(
        total in 1.0f64..64.0,
        parallel_frac in 0.01f64..1.0,
        nodes in 1u64..512,
        makespan in 1.0f64..1e6,
        flops in 1e9f64..1e19,
        hbm in 1e6f64..1e15,
        fs in 1e6f64..1e15,
        net in 1e6f64..1e15,
    ) -> WorkflowCharacterization {
        let total = total.round();
        // Keep the workflow's own parallelism inside the PM-GPU wall so
        // its operating point is attainable.
        let wall = (1792 / nodes).max(1) as f64;
        let parallel = (total * parallel_frac).max(1.0).round().min(wall).min(total);
        WorkflowCharacterization::builder("prop")
            .total_tasks(total)
            .parallel_tasks(parallel)
            .nodes_per_task(nodes)
            .makespan(Seconds(makespan))
            .node_volume(ids::COMPUTE, Work::Flops(Flops(flops)))
            .node_volume(ids::HBM, Work::Bytes(Bytes(hbm)))
            .system_volume(ids::FILE_SYSTEM, Bytes(fs))
            .system_volume(ids::NETWORK, Bytes(net))
            .build()
            .unwrap()
    }
}

proptest! {
    #[test]
    fn envelope_is_min_of_all_ceilings(wf in charz()) {
        let machine = machines::perlmutter_gpu();
        let model = RooflineModel::build(&machine, &wf).unwrap();
        let wall = model.parallelism_wall as f64;
        for frac in [0.1f64, 0.5, 1.0] {
            let x = (wall * frac).max(1e-3);
            let Some(env) = model.envelope_at(x) else { continue };
            for c in &model.ceilings {
                prop_assert!(env.get() <= c.tps_at(x).get() * (1.0 + 1e-12));
            }
            // The envelope is attained by some ceiling.
            let min = model
                .ceilings
                .iter()
                .map(|c| c.tps_at(x).get())
                .fold(f64::INFINITY, f64::min);
            prop_assert!((env.get() - min).abs() <= 1e-12 * min.max(1.0));
        }
    }

    #[test]
    fn envelope_is_monotone_in_x(wf in charz()) {
        let machine = machines::perlmutter_gpu();
        let model = RooflineModel::build(&machine, &wf).unwrap();
        let wall = model.parallelism_wall as f64;
        let mut prev = 0.0f64;
        for i in 1..=16 {
            let x = wall * i as f64 / 16.0;
            if x <= 0.0 { continue; }
            let env = model.envelope_at(x).unwrap().get();
            prop_assert!(env >= prev - 1e-12 * prev.max(1.0),
                "envelope decreased: {} -> {}", prev, env);
            prev = env;
        }
        // Beyond the wall the region is unattainable.
        prop_assert!(model.envelope_at(wall + 1.0).is_none());
    }

    #[test]
    fn more_volume_never_raises_a_ceiling(wf in charz(), factor in 1.0f64..100.0) {
        let machine = machines::perlmutter_gpu();
        let base = RooflineModel::build(&machine, &wf).unwrap();
        let mut heavier = wf.clone();
        for w in heavier.node_volumes.values_mut() {
            *w = w.scale(factor);
        }
        for b in heavier.system_volumes.values_mut() {
            *b = *b * factor;
        }
        let heavy = RooflineModel::build(&machine, &heavier).unwrap();
        let x = wf.parallel_tasks;
        let e0 = base.envelope_at(x).unwrap().get();
        let e1 = heavy.envelope_at(x).unwrap().get();
        prop_assert!(e1 <= e0 * (1.0 + 1e-12));
        // Exactly inversely proportional for a uniform scale.
        prop_assert!((e1 * factor - e0).abs() <= 1e-9 * e0.max(1.0));
    }

    #[test]
    fn faster_machine_never_lowers_the_envelope(wf in charz(), factor in 1.0f64..50.0) {
        let machine = machines::perlmutter_gpu();
        let mut fast = machine.clone();
        for id in [ids::COMPUTE, ids::HBM, ids::FILE_SYSTEM, ids::NETWORK] {
            fast = fast.with_scaled_resource(id, factor).unwrap();
        }
        let base = RooflineModel::build(&machine, &wf).unwrap();
        let quick = RooflineModel::build(&fast, &wf).unwrap();
        let x = wf.parallel_tasks;
        prop_assert!(
            quick.envelope_at(x).unwrap().get()
                >= base.envelope_at(x).unwrap().get() * (1.0 - 1e-12)
        );
    }

    #[test]
    fn dot_lies_on_its_own_makespan_isoline(wf in charz()) {
        let machine = machines::perlmutter_gpu();
        let model = RooflineModel::build(&machine, &wf).unwrap();
        let dot = model.dot.as_ref().unwrap();
        let iso = model
            .makespan_isoline_at(wf.makespan.unwrap(), dot.x)
            .get();
        prop_assert!((iso - dot.tps.get()).abs() <= 1e-12 * iso.max(1e-12));
    }

    #[test]
    fn intra_task_rebalance_conserves_throughput_upper_bounds(
        wf in charz(),
        k in 1.0f64..8.0,
    ) {
        let machine = machines::perlmutter_gpu();
        // Only test when the transform keeps a valid shape.
        let Ok(shifted) = scale_intra_task_parallelism(&wf, k, 1.0) else {
            return Ok(());
        };
        let Ok(m0) = RooflineModel::build(&machine, &wf) else { return Ok(()); };
        let Ok(m1) = RooflineModel::build(&machine, &shifted) else { return Ok(()); };
        // System ceilings are unmoved by the rebalance only when the
        // allocation (nodes in use) is unchanged; for per-node-scaled
        // resources the aggregate follows nodes_in_use, which the
        // transform approximately preserves (rounding aside).
        let f0 = m0
            .ceilings
            .iter()
            .find(|c| c.resource.as_str() == ids::FILE_SYSTEM)
            .unwrap()
            .tps_at_one
            .get();
        let f1 = m1
            .ceilings
            .iter()
            .find(|c| c.resource.as_str() == ids::FILE_SYSTEM)
            .unwrap()
            .tps_at_one
            .get();
        prop_assert!((f0 - f1).abs() <= 1e-9 * f0.max(1.0));
        // Per-slot node time scaled by 1/s = 1: ceiling value at the
        // workflow's own (new) x is unchanged up to rounding of
        // parallel_tasks clamping.
        prop_assert!(m1.parallelism_wall <= m0.parallelism_wall);
    }

    #[test]
    fn widen_batch_scales_dot_and_keeps_node_ceiling_slope(
        wf in charz(),
        k in 1.0f64..16.0,
    ) {
        let machine = machines::perlmutter_gpu();
        let wide = widen_batch(&wf, k).unwrap();
        let m0 = RooflineModel::build(&machine, &wf).unwrap();
        let m1 = RooflineModel::build(&machine, &wide).unwrap();
        let d0 = m0.dot.as_ref().unwrap();
        let d1 = m1.dot.as_ref().unwrap();
        prop_assert!((d1.tps.get() / d0.tps.get() - k).abs() <= 1e-9 * k);
        prop_assert!((d1.x / d0.x - k).abs() <= 1e-9 * k);
        // Node ceilings keep the same diagonal (same per-slot volumes).
        let c0 = m0
            .ceilings
            .iter()
            .find(|c| c.resource.as_str() == ids::COMPUTE)
            .unwrap();
        let c1 = m1
            .ceilings
            .iter()
            .find(|c| c.resource.as_str() == ids::COMPUTE)
            .unwrap();
        prop_assert!(
            (c0.tps_at(3.0).get() - c1.tps_at(3.0).get()).abs()
                <= 1e-9 * c0.tps_at(3.0).get()
        );
    }

    #[test]
    fn zone_classification_is_total_and_consistent(
        measured in 1.0f64..1e6,
        tps in 1e-9f64..1e3,
        t_makespan in proptest::option::of(1.0f64..1e6),
        t_tps in proptest::option::of(1e-9f64..1e3),
    ) {
        let report = classify_point(
            Seconds(measured),
            TasksPerSec(tps),
            t_makespan.map(Seconds),
            t_tps.map(TasksPerSec),
        );
        let good_m = t_makespan.is_none_or(|t| t >= measured);
        let good_t = t_tps.is_none_or(|t| tps >= t);
        prop_assert_eq!(report.zone.good_makespan(), good_m);
        prop_assert_eq!(report.zone.good_throughput(), good_t);
    }

    #[test]
    fn efficiency_is_at_most_one_for_feasible_dots(wf in charz()) {
        let machine = machines::perlmutter_gpu();
        let model = RooflineModel::build(&machine, &wf).unwrap();
        // Clamp the dot to the envelope by stretching the makespan, then
        // re-check: efficiency <= 1.
        let x = wf.parallel_tasks;
        let env = model.envelope_at(x).unwrap().get();
        let feasible_makespan = wf.total_tasks / env * 1.01;
        let feasible = wf.with_makespan(Seconds(feasible_makespan.max(1e-9)));
        let model = RooflineModel::build(&machine, &feasible).unwrap();
        let e = model.efficiency().unwrap();
        prop_assert!(e <= 1.0 + 1e-9, "efficiency {}", e);
        prop_assert!(e > 0.0);
    }
}
