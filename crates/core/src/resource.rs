//! Resource identities: the node-local and system-wide performance
//! dimensions a workflow exercises and a machine bounds.
//!
//! The Workflow Roofline Model matches workflow *volumes* against machine
//! *peaks* by resource identity. Node resources produce diagonal ceilings;
//! system resources produce horizontal ceilings (see
//! [`crate::roofline`]). Identities are small string keys so that machines
//! can expose arbitrary resource sets (the paper's machines have different
//! mixes: Cori has burst buffers, PM-GPU has HBM and PCIe).

use serde::{Deserialize, Serialize};
use std::borrow::Borrow;
use std::fmt;

/// Identifies one performance dimension (e.g. `gpu_flops`, `hbm`, `fs`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ResourceId(String);

impl ResourceId {
    /// Creates an id from any string-like value.
    pub fn new(id: impl Into<String>) -> Self {
        Self(id.into())
    }

    /// The raw key.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ResourceId {
    fn from(s: &str) -> Self {
        Self(s.to_owned())
    }
}

impl From<String> for ResourceId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

impl Borrow<str> for ResourceId {
    fn borrow(&self) -> &str {
        &self.0
    }
}

/// Well-known resource ids used by the built-in machine models and the
/// paper's case studies. Custom ids are equally valid everywhere.
pub mod ids {
    /// Node-local floating-point compute (GPU or CPU).
    pub const COMPUTE: &str = "compute";
    /// Node-local high-bandwidth GPU memory.
    pub const HBM: &str = "hbm";
    /// Node-local CPU DRAM.
    pub const DRAM: &str = "dram";
    /// Host-device PCIe link (per node, all GPUs aggregated).
    pub const PCIE: &str = "pcie";
    /// Shared parallel file system (system internal I/O).
    pub const FILE_SYSTEM: &str = "fs";
    /// System interconnect NICs (MPI traffic).
    pub const NETWORK: &str = "net";
    /// System external connectivity (WAN / data transfer nodes).
    pub const EXTERNAL: &str = "ext";
    /// Burst-buffer tier (Cori).
    pub const BURST_BUFFER: &str = "bb";
}

/// How a system-level resource's aggregate capacity scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SystemScaling {
    /// A fixed aggregate capacity shared by every task (file system,
    /// external link): adding nodes does not add capacity.
    Aggregate,
    /// Capacity proportional to the nodes in use (NICs): every node in the
    /// workflow's allocation contributes its injection bandwidth. The
    /// paper's BGW network ceiling `volume / (N x 100 GB/s)` uses this.
    PerNodeInUse,
}

impl fmt::Display for SystemScaling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemScaling::Aggregate => f.write_str("aggregate"),
            SystemScaling::PerNodeInUse => f.write_str("per-node-in-use"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn id_round_trips() {
        let id = ResourceId::new("hbm");
        assert_eq!(id.as_str(), "hbm");
        assert_eq!(id.to_string(), "hbm");
        assert_eq!(ResourceId::from("hbm"), id);
        assert_eq!(ResourceId::from(String::from("hbm")), id);
    }

    #[test]
    fn id_works_as_map_key_via_borrow() {
        let mut m: BTreeMap<ResourceId, u32> = BTreeMap::new();
        m.insert(ids::FILE_SYSTEM.into(), 1);
        assert_eq!(m.get(ids::FILE_SYSTEM), Some(&1));
        assert_eq!(m.get("missing"), None);
    }

    #[test]
    fn scaling_display() {
        assert_eq!(SystemScaling::Aggregate.to_string(), "aggregate");
        assert_eq!(SystemScaling::PerNodeInUse.to_string(), "per-node-in-use");
    }

    #[test]
    fn ids_are_distinct() {
        let all = [
            ids::COMPUTE,
            ids::HBM,
            ids::DRAM,
            ids::PCIE,
            ids::FILE_SYSTEM,
            ids::NETWORK,
            ids::EXTERNAL,
            ids::BURST_BUFFER,
        ];
        let set: std::collections::BTreeSet<_> = all.iter().collect();
        assert_eq!(set.len(), all.len());
    }
}
