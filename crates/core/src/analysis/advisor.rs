//! Optimization guidance (Section III-C and the paper's conclusion):
//! turns a roofline into concrete, audience-tagged recommendations.

use crate::analysis::bounds::{self, BoundKind};
use crate::analysis::zones::{self, Zone};
use crate::roofline::RooflineModel;
use serde::{Deserialize, Serialize};

/// Who should act on a recommendation (the conclusion addresses three
/// audiences).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Audience {
    /// Facility / system architects (QOS, storage, network provisioning).
    SystemArchitect,
    /// The people writing the workflow's code and glue.
    WorkflowDeveloper,
    /// The people scheduling and running the workflow.
    WorkflowUser,
}

/// The direction an optimization moves the dot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Move up: shorter makespan at the same parallelism.
    ReduceMakespan,
    /// Move up-right: more parallel tasks.
    IncreaseTaskParallelism,
    /// Raise the node ceiling: better per-node efficiency.
    ImproveNodeEfficiency,
    /// Raise a system ceiling: bandwidth, QOS, or contention relief.
    ImproveSystemBandwidth,
    /// Remove fixed control-flow overhead (bash/python/srun).
    ReduceControlFlowOverhead,
    /// Trade task parallelism for intra-task parallelism (or back).
    RebalanceIntraTaskParallelism,
}

/// One actionable recommendation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// Who should act.
    pub audience: Audience,
    /// Which way the dot (or a ceiling) moves.
    pub direction: Direction,
    /// Upper bound on the speedup this direction can deliver, when the
    /// model can bound it (e.g. the gap to the binding ceiling).
    pub max_gain: Option<f64>,
    /// Human-readable rationale referencing the model's evidence.
    pub rationale: String,
}

/// The full advisory report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Advice {
    /// One-line summary of the dominant constraint.
    pub headline: String,
    /// Ranked recommendations (largest bounded gain first, unbounded last).
    pub recommendations: Vec<Recommendation>,
}

/// Fraction of the envelope below which we suspect time is lost to
/// control flow rather than the modelled resources (the GPTune pattern:
/// the dot sits far under *every* ceiling).
const OVERHEAD_SUSPECT_EFFICIENCY: f64 = 0.25;

/// Derives optimization advice from a built model. Works without a
/// measured dot (plan-time advice), but gives sharper bounds with one.
pub fn advise(model: &RooflineModel) -> Advice {
    let report = bounds::classify(model);
    let mut recs: Vec<Recommendation> = Vec::new();
    let x = model.workflow.parallel_tasks;
    let wall = model.parallelism_wall as f64;
    let efficiency = report.efficiency;

    match &report.bound {
        BoundKind::System { resource } => {
            let gain_to_env = efficiency.map(|e| 1.0 / e);
            recs.push(Recommendation {
                audience: Audience::SystemArchitect,
                direction: Direction::ImproveSystemBandwidth,
                max_gain: None,
                rationale: format!(
                    "the shared resource `{resource}` sets the lowest ceiling at x = {x}; \
                     a faster compute unit makes no difference while this binds -- invest \
                     in bandwidth and end-to-end QOS for `{resource}`"
                ),
            });
            if let Some(g) = gain_to_env {
                if g > 1.05 {
                    recs.push(Recommendation {
                        audience: Audience::WorkflowDeveloper,
                        direction: Direction::ReduceMakespan,
                        max_gain: Some(g),
                        rationale: format!(
                            "the dot sits at {:.0}% of the `{resource}` ceiling; up to \
                             {g:.1}x remains before the shared resource saturates",
                            efficiency.unwrap_or(0.0) * 100.0
                        ),
                    });
                }
            }
        }
        BoundKind::Node { resource } => {
            if let Some(e) = efficiency {
                if e < 1.0 {
                    recs.push(Recommendation {
                        audience: Audience::WorkflowDeveloper,
                        direction: Direction::ImproveNodeEfficiency,
                        max_gain: Some(1.0 / e),
                        rationale: format!(
                            "node resource `{resource}` binds and the workflow achieves \
                             {:.0}% of that ceiling; classic node-level Roofline analysis \
                             is the next step",
                            e * 100.0
                        ),
                    });
                }
            } else {
                recs.push(Recommendation {
                    audience: Audience::WorkflowDeveloper,
                    direction: Direction::ImproveNodeEfficiency,
                    max_gain: None,
                    rationale: format!(
                        "node resource `{resource}` sets the lowest ceiling; node-local \
                         optimization raises attainable throughput directly"
                    ),
                });
            }
            if x < wall {
                recs.push(Recommendation {
                    audience: Audience::WorkflowUser,
                    direction: Direction::IncreaseTaskParallelism,
                    max_gain: Some(wall / x),
                    rationale: format!(
                        "node-bound throughput scales with parallel tasks: the wall allows \
                         {wall:.0} tasks vs {x:.0} used ({:.1}x headroom)",
                        wall / x
                    ),
                });
            }
        }
        BoundKind::Parallelism => {
            recs.push(Recommendation {
                audience: Audience::WorkflowUser,
                direction: Direction::RebalanceIntraTaskParallelism,
                max_gain: None,
                rationale: format!(
                    "the workflow already runs at the parallelism wall ({wall:.0} tasks); \
                     shrinking nodes-per-task moves the wall right (more throughput), while \
                     growing it shortens makespan if tasks scale -- urgent single results \
                     favour large allocations, batches favour small ones"
                ),
            });
        }
        BoundKind::Unbounded => {
            recs.push(Recommendation {
                audience: Audience::WorkflowDeveloper,
                direction: Direction::ReduceControlFlowOverhead,
                max_gain: None,
                rationale: "no resource volumes are recorded, so nothing in the model bounds \
                            throughput; profile the workflow to attribute its time"
                    .to_owned(),
            });
        }
    }

    // The GPTune pattern: far below every ceiling means the modelled
    // resources do not explain the makespan -- control flow does.
    if let Some(e) = efficiency {
        if e < OVERHEAD_SUSPECT_EFFICIENCY && !matches!(report.bound, BoundKind::Unbounded) {
            recs.push(Recommendation {
                audience: Audience::WorkflowDeveloper,
                direction: Direction::ReduceControlFlowOverhead,
                max_gain: Some(1.0 / e),
                rationale: format!(
                    "the dot reaches only {:.0}% of the envelope, so most time is spent \
                     outside the modelled resources (interpreter start-up, job launch, \
                     metadata I/O); containers or in-memory control flow (MPI_Comm_spawn \
                     instead of per-iteration srun) remove such overhead",
                    e * 100.0
                ),
            });
        }
    }

    // Target-zone guidance (Fig. 2b).
    if let Ok(zr) = zones::classify(&model.workflow) {
        match zr.zone {
            Zone::GoodMakespanPoorThroughput => recs.push(Recommendation {
                audience: Audience::WorkflowUser,
                direction: Direction::IncreaseTaskParallelism,
                max_gain: zr.throughput_margin.map(|m| 1.0 / m),
                rationale: "the deadline is met but the rate target is not: either keep \
                            shortening the makespan or add parallel tasks (Fig. 2b \
                            directions 1 and 2)"
                    .to_owned(),
            }),
            Zone::PoorMakespanGoodThroughput => recs.push(Recommendation {
                audience: Audience::WorkflowUser,
                direction: Direction::RebalanceIntraTaskParallelism,
                max_gain: zr.makespan_margin.map(|m| 1.0 / m),
                rationale: "the rate target is met but the deadline is not: shift toward \
                            intra-task parallelism (larger allocations per task) to \
                            shorten the makespan, accepting a lower wall"
                    .to_owned(),
            }),
            _ => {}
        }
    }

    recs.sort_by(|a, b| match (a.max_gain, b.max_gain) {
        (Some(x), Some(y)) => y.partial_cmp(&x).expect("gains are finite"),
        (Some(_), None) => std::cmp::Ordering::Less,
        (None, Some(_)) => std::cmp::Ordering::Greater,
        (None, None) => std::cmp::Ordering::Equal,
    });

    let headline = match &report.bound {
        BoundKind::System { resource } => {
            format!("{}: system-bound on `{resource}`", model.workflow.name)
        }
        BoundKind::Node { resource } => {
            format!("{}: node-bound on `{resource}`", model.workflow.name)
        }
        BoundKind::Parallelism => format!(
            "{}: parallelism-bound at the {}-task wall",
            model.workflow.name, model.parallelism_wall
        ),
        BoundKind::Unbounded => format!("{}: unconstrained model", model.workflow.name),
    };

    Advice {
        headline,
        recommendations: recs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charz::WorkflowCharacterization;
    use crate::machines;
    use crate::resource::ids;
    use crate::units::{Bytes, Flops, Seconds, Work};

    fn advise_for(wf: &WorkflowCharacterization) -> Advice {
        let model = RooflineModel::build(&machines::perlmutter_gpu(), wf).unwrap();
        advise(&model)
    }

    #[test]
    fn system_bound_names_the_resource_and_architect() {
        let wf = WorkflowCharacterization::builder("lcls-like")
            .total_tasks(6.0)
            .parallel_tasks(5.0)
            .nodes_per_task(32)
            .makespan(Seconds::secs(1020.0))
            .system_volume(ids::EXTERNAL, Bytes::tb(5.0))
            .build()
            .unwrap();
        let a = advise_for(&wf);
        assert!(a.headline.contains("system-bound"), "{}", a.headline);
        assert!(a
            .recommendations
            .iter()
            .any(|r| r.audience == Audience::SystemArchitect
                && r.direction == Direction::ImproveSystemBandwidth));
        // Faster compute is never recommended for a system-bound workflow.
        assert!(!a
            .recommendations
            .iter()
            .any(|r| r.direction == Direction::ImproveNodeEfficiency));
    }

    #[test]
    fn node_bound_recommends_efficiency_and_width() {
        let wf = WorkflowCharacterization::builder("bgw-like")
            .total_tasks(2.0)
            .parallel_tasks(1.0)
            .nodes_per_task(64)
            .makespan(Seconds::secs(4184.86))
            .node_volume(ids::COMPUTE, Work::Flops(Flops::pflops(4390.0 / 64.0)))
            .system_volume(ids::FILE_SYSTEM, Bytes::gb(70.0))
            .build()
            .unwrap();
        let a = advise_for(&wf);
        assert!(a.headline.contains("node-bound"));
        let eff_rec = a
            .recommendations
            .iter()
            .find(|r| r.direction == Direction::ImproveNodeEfficiency)
            .unwrap();
        // ~2.37x gain to the ceiling (42% efficiency).
        let g = eff_rec.max_gain.unwrap();
        assert!((g - 2.37).abs() < 0.05, "gain {g}");
        let width = a
            .recommendations
            .iter()
            .find(|r| r.direction == Direction::IncreaseTaskParallelism)
            .unwrap();
        assert!((width.max_gain.unwrap() - 28.0).abs() < 1e-9);
    }

    #[test]
    fn far_below_every_ceiling_flags_control_flow() {
        // GPTune-like: tiny volumes, long makespan.
        let wf = WorkflowCharacterization::builder("gptune-like")
            .total_tasks(1.0)
            .parallel_tasks(1.0)
            .nodes_per_task(1)
            .makespan(Seconds::secs(553.0))
            .node_volume(ids::HBM, Work::Bytes(Bytes::mb(3344.0)))
            .system_volume(ids::FILE_SYSTEM, Bytes::mb(45.0))
            .build()
            .unwrap();
        let a = advise_for(&wf);
        assert!(a
            .recommendations
            .iter()
            .any(|r| r.direction == Direction::ReduceControlFlowOverhead));
    }

    #[test]
    fn at_wall_advice_mentions_rebalancing() {
        let wf = WorkflowCharacterization::builder("wall")
            .total_tasks(28.0)
            .parallel_tasks(28.0)
            .nodes_per_task(64)
            .makespan(Seconds::secs(10.0))
            .node_volume(ids::COMPUTE, Work::Flops(Flops::pflops(100.0)))
            .build()
            .unwrap();
        let a = advise_for(&wf);
        assert!(a.headline.contains("parallelism-bound"));
        assert!(a
            .recommendations
            .iter()
            .any(|r| r.direction == Direction::RebalanceIntraTaskParallelism));
    }

    #[test]
    fn unbounded_model_asks_for_profiling() {
        let wf = WorkflowCharacterization::builder("empty").build().unwrap();
        let a = advise_for(&wf);
        assert!(a.headline.contains("unconstrained"));
        assert_eq!(a.recommendations.len(), 1);
    }

    #[test]
    fn recommendations_sorted_by_bounded_gain() {
        let wf = WorkflowCharacterization::builder("bgw-like")
            .total_tasks(2.0)
            .parallel_tasks(1.0)
            .nodes_per_task(64)
            .makespan(Seconds::secs(4184.86))
            .node_volume(ids::COMPUTE, Work::Flops(Flops::pflops(4390.0 / 64.0)))
            .build()
            .unwrap();
        let a = advise_for(&wf);
        let gains: Vec<f64> = a
            .recommendations
            .iter()
            .filter_map(|r| r.max_gain)
            .collect();
        for w in gains.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }
}
