//! Bound classification (Fig. 3): is the workflow node-bound,
//! system-bound, or parallelism-bound, and which resource binds?

use crate::roofline::{CeilingKind, RooflineModel};
use serde::{Deserialize, Serialize};

/// The category of the binding constraint at the workflow's operating
/// point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BoundKind {
    /// A node-local ceiling binds (blue region of Fig. 3a): improve node
    /// efficiency or widen parallelism.
    Node {
        /// The binding node resource id.
        resource: String,
    },
    /// A shared system ceiling binds (orange region of Fig. 3b): more
    /// parallel tasks will not help; bandwidth or contention is the issue.
    System {
        /// The binding system resource id.
        resource: String,
    },
    /// The workflow already runs at the parallelism wall and the envelope
    /// there exceeds its throughput only marginally.
    Parallelism,
    /// No ceilings were derived (no volumes recorded).
    Unbounded,
}

/// The result of classifying a workflow's operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundReport {
    /// What binds at the workflow's own x.
    pub bound: BoundKind,
    /// Achieved fraction of the attainable envelope (1.0 = on the
    /// envelope), when a measured dot exists.
    pub efficiency: Option<f64>,
    /// Gap factor between the binding node and binding system ceilings at
    /// the workflow's x (`node / system`); > 1 means the system ceiling is
    /// the lower of the two.
    pub node_over_system: Option<f64>,
}

/// Classifies the binding constraint of `model` at the workflow's own
/// parallelism.
///
/// The workflow is *parallelism-bound* when it sits at the wall and the
/// binding ceiling at the wall is a node ceiling (so widening would have
/// helped if the machine allowed it).
pub fn classify(model: &RooflineModel) -> BoundReport {
    let x = model.workflow.parallel_tasks;
    let efficiency = model.efficiency();

    let node_min = model.node_ceilings().first().map(|c| c.tps_at(x).get());
    let system_min = model.system_ceilings().first().map(|c| c.tps_at(x).get());
    let node_over_system = match (node_min, system_min) {
        (Some(n), Some(s)) if s > 0.0 => Some(n / s),
        _ => None,
    };

    let Some(binding) = model.binding_ceiling() else {
        return BoundReport {
            bound: BoundKind::Unbounded,
            efficiency,
            node_over_system,
        };
    };

    let at_wall = x >= model.parallelism_wall as f64 - 1e-9;
    let bound = match binding.kind {
        CeilingKind::Node if at_wall => BoundKind::Parallelism,
        CeilingKind::Node => BoundKind::Node {
            resource: binding.resource.to_string(),
        },
        CeilingKind::System => BoundKind::System {
            resource: binding.resource.to_string(),
        },
    };
    BoundReport {
        bound,
        efficiency,
        node_over_system,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charz::WorkflowCharacterization;
    use crate::machines;
    use crate::resource::ids;
    use crate::roofline::RooflineModel;
    use crate::units::{Bytes, Flops, Seconds, Work};

    fn model_with(nodes: u64, parallel: f64, flops_per_node: Flops, ext: Bytes) -> RooflineModel {
        let wf = WorkflowCharacterization::builder("t")
            .total_tasks(parallel)
            .parallel_tasks(parallel)
            .nodes_per_task(nodes)
            .makespan(Seconds::secs(10_000.0))
            .node_volume(ids::COMPUTE, Work::Flops(flops_per_node))
            .system_volume(ids::EXTERNAL, ext)
            .build()
            .unwrap();
        RooflineModel::build(&machines::perlmutter_gpu(), &wf).unwrap()
    }

    #[test]
    fn heavy_compute_is_node_bound() {
        // Huge per-node FLOPs, tiny external volume.
        let m = model_with(64, 4.0, Flops::pflops(100.0), Bytes::gb(1.0));
        let r = classify(&m);
        assert_eq!(
            r.bound,
            BoundKind::Node {
                resource: ids::COMPUTE.to_owned()
            }
        );
        assert!(r.node_over_system.unwrap() < 1.0);
    }

    #[test]
    fn heavy_external_is_system_bound() {
        let m = model_with(64, 4.0, Flops::gflops(1.0), Bytes::pb(10.0));
        let r = classify(&m);
        assert_eq!(
            r.bound,
            BoundKind::System {
                resource: ids::EXTERNAL.to_owned()
            }
        );
        assert!(r.node_over_system.unwrap() > 1.0);
    }

    #[test]
    fn at_wall_with_node_binding_is_parallelism_bound() {
        // 28 parallel 64-node tasks = the PM-GPU wall.
        let m = model_with(64, 28.0, Flops::pflops(100.0), Bytes::gb(1.0));
        let r = classify(&m);
        assert_eq!(r.bound, BoundKind::Parallelism);
    }

    #[test]
    fn no_volumes_is_unbounded() {
        let wf = WorkflowCharacterization::builder("t").build().unwrap();
        let model = RooflineModel::build(&machines::perlmutter_gpu(), &wf).unwrap();
        let r = classify(&model);
        assert_eq!(r.bound, BoundKind::Unbounded);
        assert!(r.efficiency.is_none());
        assert!(r.node_over_system.is_none());
    }

    #[test]
    fn efficiency_reported_with_dot() {
        let m = model_with(64, 4.0, Flops::pflops(100.0), Bytes::gb(1.0));
        let r = classify(&m);
        let e = r.efficiency.unwrap();
        assert!(e > 0.0 && e <= 1.0 + 1e-9);
    }
}
