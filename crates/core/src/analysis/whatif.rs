//! What-if transforms (Fig. 2b/2c): how the roofline moves when the
//! workflow trades intra-task parallelism against task parallelism, widens
//! its batch, or removes overhead.

use crate::charz::WorkflowCharacterization;
use crate::error::CoreError;
use crate::units::Seconds;

/// Shifts work from task parallelism to intra-task parallelism
/// (Fig. 2c): each task uses `k`x the nodes, and the number of parallel
/// tasks shrinks `k`x (clamped at one task).
///
/// `scalability` in `(0, 1]` models imperfect strong scaling: 1.0 means a
/// task on `k`x nodes runs exactly `k`x faster; 0.8 means it reaches 80%
/// of that. With perfect scalability the node ceilings (at fixed x) rise
/// by `k`x and the parallelism wall moves left by `k`x, exactly the
/// dotted-circle construction in the paper. Imperfect scalability lowers
/// the ceiling-wall intercept, making throughput targets harder to hit.
///
/// The measured makespan, if any, is re-predicted as `makespan /
/// scalability` (a slot now retires `k`x the tasks, each `k*s`x faster).
pub fn scale_intra_task_parallelism(
    wf: &WorkflowCharacterization,
    k: f64,
    scalability: f64,
) -> Result<WorkflowCharacterization, CoreError> {
    if !(k.is_finite() && k > 0.0) {
        return Err(CoreError::InvalidInput(format!(
            "intra-task scaling factor must be positive, got {k}"
        )));
    }
    if !(scalability.is_finite() && scalability > 0.0 && scalability <= 1.0) {
        return Err(CoreError::InvalidInput(format!(
            "scalability must be in (0, 1], got {scalability}"
        )));
    }
    let mut out = wf.clone();
    let new_nodes = (wf.nodes_per_task as f64 * k).round();
    if new_nodes < 1.0 {
        return Err(CoreError::InvalidInput(format!(
            "scaling {k}x leaves a task with no nodes"
        )));
    }
    out.nodes_per_task = new_nodes as u64;
    out.parallel_tasks = (wf.parallel_tasks / k).max(1.0).min(wf.total_tasks);
    // Per-slot per-node volume: kappa' * v_task / (k * s) = kappa * v / s.
    for work in out.node_volumes.values_mut() {
        *work = work.scale(1.0 / scalability);
    }
    if let Some(m) = wf.makespan {
        out.makespan = Some(Seconds(m.get() / scalability));
    }
    out.validate()?;
    Ok(out)
}

/// Widens the batch: `k`x the parallel tasks and `k`x the total tasks
/// (optimization direction 2 of Fig. 2b). Per-slot node volumes are
/// unchanged; total system volumes grow `k`x. The makespan is kept (the
/// same slots run for the same time, retiring `k`x the tasks in aggregate)
/// so the predicted dot moves diagonally up-right.
pub fn widen_batch(
    wf: &WorkflowCharacterization,
    k: f64,
) -> Result<WorkflowCharacterization, CoreError> {
    if !(k.is_finite() && k > 0.0) {
        return Err(CoreError::InvalidInput(format!(
            "batch factor must be positive, got {k}"
        )));
    }
    let mut out = wf.clone();
    out.parallel_tasks = wf.parallel_tasks * k;
    out.total_tasks = wf.total_tasks * k;
    for bytes in out.system_volumes.values_mut() {
        *bytes = *bytes * k;
    }
    out.validate()?;
    Ok(out)
}

/// Removes a fixed overhead from the measured makespan (the GPTune
/// projection of Fig. 10a: "reduce the Python overhead"). Fails when the
/// overhead is not smaller than the makespan.
pub fn remove_overhead(
    wf: &WorkflowCharacterization,
    overhead: Seconds,
) -> Result<WorkflowCharacterization, CoreError> {
    let m = wf
        .makespan
        .ok_or_else(|| CoreError::MissingMakespan(wf.name.clone()))?;
    if !(overhead.get() >= 0.0 && overhead.get() < m.get()) {
        return Err(CoreError::InvalidInput(format!(
            "overhead {overhead} must be non-negative and below the makespan {m}"
        )));
    }
    let mut out = wf.clone();
    out.makespan = Some(m - overhead);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines;
    use crate::resource::ids;
    use crate::roofline::RooflineModel;
    use crate::units::{Bytes, Flops, Work};

    fn base() -> WorkflowCharacterization {
        WorkflowCharacterization::builder("w")
            .total_tasks(8.0)
            .parallel_tasks(8.0)
            .nodes_per_task(64)
            .makespan(Seconds::secs(1000.0))
            .node_volume(ids::COMPUTE, Work::Flops(Flops::pflops(10.0)))
            .system_volume(ids::FILE_SYSTEM, Bytes::tb(1.0))
            .build()
            .unwrap()
    }

    #[test]
    fn fig2c_perfect_scaling_moves_wall_and_ceiling_2x() {
        let m = machines::perlmutter_gpu();
        let before = RooflineModel::build(&m, &base()).unwrap();
        let after_wf = scale_intra_task_parallelism(&base(), 2.0, 1.0).unwrap();
        let after = RooflineModel::build(&m, &after_wf).unwrap();

        // Wall moves left by 2x: 28 -> 14.
        assert_eq!(before.parallelism_wall, 28);
        assert_eq!(after.parallelism_wall, 14);

        // Node ceiling at any fixed x rises 2x.
        let cb = before
            .ceilings
            .iter()
            .find(|c| c.resource.as_str() == ids::COMPUTE)
            .unwrap();
        let ca = after
            .ceilings
            .iter()
            .find(|c| c.resource.as_str() == ids::COMPUTE)
            .unwrap();
        let ratio = ca.tps_at(4.0).get() / cb.tps_at(4.0).get();
        assert!((ratio - 2.0).abs() < 1e-9, "ratio {ratio}");

        // Parallel tasks halve; total tasks and makespan are unchanged.
        assert!((after_wf.parallel_tasks - 4.0).abs() < 1e-12);
        assert!((after_wf.total_tasks - 8.0).abs() < 1e-12);
        assert_eq!(after_wf.makespan.unwrap(), Seconds::secs(1000.0));
    }

    #[test]
    fn imperfect_scaling_lowers_the_wall_intercept() {
        let m = machines::perlmutter_gpu();
        let perfect = scale_intra_task_parallelism(&base(), 2.0, 1.0).unwrap();
        let imperfect = scale_intra_task_parallelism(&base(), 2.0, 0.7).unwrap();
        let mp = RooflineModel::build(&m, &perfect).unwrap();
        let mi = RooflineModel::build(&m, &imperfect).unwrap();
        let wall = mp.parallelism_wall as f64;
        assert_eq!(mp.parallelism_wall, mi.parallelism_wall);
        let yp = mp
            .ceilings
            .iter()
            .find(|c| c.resource.as_str() == ids::COMPUTE)
            .unwrap()
            .tps_at(wall)
            .get();
        let yi = mi
            .ceilings
            .iter()
            .find(|c| c.resource.as_str() == ids::COMPUTE)
            .unwrap()
            .tps_at(wall)
            .get();
        assert!((yi / yp - 0.7).abs() < 1e-9);
        // Predicted makespan degrades by 1/s.
        assert!((imperfect.makespan.unwrap().get() - 1000.0 / 0.7).abs() < 1e-9);
    }

    #[test]
    fn system_ceilings_are_unmoved_by_intra_task_scaling() {
        let m = machines::perlmutter_gpu();
        let before = RooflineModel::build(&m, &base()).unwrap();
        let after = RooflineModel::build(
            &m,
            &scale_intra_task_parallelism(&base(), 2.0, 1.0).unwrap(),
        )
        .unwrap();
        let fb = before
            .ceilings
            .iter()
            .find(|c| c.resource.as_str() == ids::FILE_SYSTEM)
            .unwrap();
        let fa = after
            .ceilings
            .iter()
            .find(|c| c.resource.as_str() == ids::FILE_SYSTEM)
            .unwrap();
        assert!((fa.tps_at_one.get() - fb.tps_at_one.get()).abs() < 1e-15);
    }

    #[test]
    fn widen_batch_moves_dot_diagonally() {
        let wf = widen_batch(&base(), 3.0).unwrap();
        assert!((wf.parallel_tasks - 24.0).abs() < 1e-12);
        assert!((wf.total_tasks - 24.0).abs() < 1e-12);
        // System volume scales with the batch.
        assert_eq!(
            wf.system_volumes.get(ids::FILE_SYSTEM),
            Some(&Bytes::tb(3.0))
        );
        // TPS triples at the same makespan.
        let t0 = base().throughput().unwrap().get();
        let t1 = wf.throughput().unwrap().get();
        assert!((t1 / t0 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn remove_overhead_projects_gptune() {
        // Spawn mode 228 s; removing ~209 s of Python overhead leaves
        // ~19 s, the paper's ~12x projection.
        let wf = WorkflowCharacterization::builder("gptune")
            .makespan(Seconds::secs(228.0))
            .build()
            .unwrap();
        let projected = remove_overhead(&wf, Seconds::secs(209.0)).unwrap();
        let speedup = 228.0 / projected.makespan.unwrap().get();
        assert!((speedup - 12.0).abs() < 0.1, "speedup {speedup}");
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(scale_intra_task_parallelism(&base(), 0.0, 1.0).is_err());
        assert!(scale_intra_task_parallelism(&base(), 2.0, 0.0).is_err());
        assert!(scale_intra_task_parallelism(&base(), 2.0, 1.5).is_err());
        assert!(scale_intra_task_parallelism(&base(), f64::NAN, 1.0).is_err());
        assert!(widen_batch(&base(), -1.0).is_err());
        assert!(remove_overhead(&base(), Seconds::secs(2000.0)).is_err());
        assert!(remove_overhead(&base(), Seconds(-1.0)).is_err());
        let no_makespan = WorkflowCharacterization::builder("x").build().unwrap();
        assert!(remove_overhead(&no_makespan, Seconds::secs(1.0)).is_err());
    }

    #[test]
    fn parallel_tasks_clamped_at_one() {
        let wf = scale_intra_task_parallelism(&base(), 16.0, 1.0).unwrap();
        assert!((wf.parallel_tasks - 1.0).abs() < 1e-12);
        assert_eq!(wf.nodes_per_task, 1024);
    }
}
