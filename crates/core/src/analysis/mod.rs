//! Interpretation of a built roofline: bound classification (Fig. 3),
//! target zones (Fig. 2a), what-if transforms (Fig. 2b/2c), and the
//! optimization advisor (Section III-C).

pub mod advisor;
pub mod bounds;
pub mod whatif;
pub mod zones;

pub use advisor::{advise, Advice, Audience, Direction, Recommendation};
pub use bounds::{classify as classify_bound, BoundKind, BoundReport};
pub use whatif::{remove_overhead, scale_intra_task_parallelism, widen_batch};
pub use zones::{classify as classify_zone, classify_point, Zone, ZoneReport};
