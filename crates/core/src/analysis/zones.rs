//! Target-zone classification (Fig. 2a): the attainable area divided into
//! four zones by the target-makespan isoline and target-throughput line.
//!
//! * makespan criterion — the workflow's measured makespan
//!   (`total_tasks / tps` at its own x) meets the deadline;
//! * throughput criterion — the dot's y meets the target rate.

use crate::charz::WorkflowCharacterization;
use crate::error::CoreError;
use crate::units::{Seconds, TasksPerSec};
use serde::{Deserialize, Serialize};

/// One of the four zones of Fig. 2a.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Zone {
    /// Green: meets both targets.
    GoodMakespanGoodThroughput,
    /// Yellow: deadline met, rate too low.
    GoodMakespanPoorThroughput,
    /// Orange: rate met, deadline missed.
    PoorMakespanGoodThroughput,
    /// Red: misses both.
    PoorMakespanPoorThroughput,
}

impl Zone {
    /// Conventional zone colour from the paper's figure.
    pub fn color(self) -> &'static str {
        match self {
            Zone::GoodMakespanGoodThroughput => "green",
            Zone::GoodMakespanPoorThroughput => "yellow",
            Zone::PoorMakespanGoodThroughput => "orange",
            Zone::PoorMakespanPoorThroughput => "red",
        }
    }

    /// True when the deadline is met.
    pub fn good_makespan(self) -> bool {
        matches!(
            self,
            Zone::GoodMakespanGoodThroughput | Zone::GoodMakespanPoorThroughput
        )
    }

    /// True when the rate target is met.
    pub fn good_throughput(self) -> bool {
        matches!(
            self,
            Zone::GoodMakespanGoodThroughput | Zone::PoorMakespanGoodThroughput
        )
    }
}

/// Zone classification together with the margins to each target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZoneReport {
    /// The zone the workflow dot falls in.
    pub zone: Zone,
    /// `target_makespan / measured_makespan` (>= 1 means deadline met),
    /// when a makespan target exists.
    pub makespan_margin: Option<f64>,
    /// `measured_tps / target_tps` (>= 1 means rate met), when a
    /// throughput target exists.
    pub throughput_margin: Option<f64>,
}

/// Classifies `workflow` against its recorded targets. A missing target
/// counts as satisfied (the workflow is only judged on what it declares).
///
/// Errors when the workflow has no measured makespan.
pub fn classify(workflow: &WorkflowCharacterization) -> Result<ZoneReport, CoreError> {
    let measured = workflow
        .makespan
        .ok_or_else(|| CoreError::MissingMakespan(workflow.name.clone()))?;
    let tps = workflow.throughput()?;
    Ok(classify_point(
        measured,
        tps,
        workflow.targets.makespan,
        workflow.targets.throughput,
    ))
}

/// Classifies an explicit (makespan, throughput) observation against
/// explicit targets.
pub fn classify_point(
    measured_makespan: Seconds,
    measured_tps: TasksPerSec,
    target_makespan: Option<Seconds>,
    target_tps: Option<TasksPerSec>,
) -> ZoneReport {
    let makespan_margin = target_makespan.map(|t| t.get() / measured_makespan.get());
    let throughput_margin = target_tps.map(|t| measured_tps.get() / t.get());
    let good_m = makespan_margin.is_none_or(|m| m >= 1.0);
    let good_t = throughput_margin.is_none_or(|m| m >= 1.0);
    let zone = match (good_m, good_t) {
        (true, true) => Zone::GoodMakespanGoodThroughput,
        (true, false) => Zone::GoodMakespanPoorThroughput,
        (false, true) => Zone::PoorMakespanGoodThroughput,
        (false, false) => Zone::PoorMakespanPoorThroughput,
    };
    ZoneReport {
        zone,
        makespan_margin,
        throughput_margin,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charz::{TargetSpec, WorkflowCharacterization};

    fn wf(makespan_s: f64) -> WorkflowCharacterization {
        WorkflowCharacterization::builder("z")
            .total_tasks(6.0)
            .parallel_tasks(5.0)
            .makespan(Seconds::secs(makespan_s))
            .targets(TargetSpec::new(
                Seconds::secs(600.0),
                TasksPerSec(6.0 / 600.0),
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn lcls_good_day_misses_both_2020_targets() {
        // 17 minutes against a 10-minute deadline.
        let r = classify(&wf(1020.0)).unwrap();
        assert_eq!(r.zone, Zone::PoorMakespanPoorThroughput);
        assert_eq!(r.zone.color(), "red");
        assert!(r.makespan_margin.unwrap() < 1.0);
        assert!(r.throughput_margin.unwrap() < 1.0);
    }

    #[test]
    fn fast_run_meets_both() {
        let r = classify(&wf(300.0)).unwrap();
        assert_eq!(r.zone, Zone::GoodMakespanGoodThroughput);
        assert!(r.zone.good_makespan() && r.zone.good_throughput());
        assert!((r.makespan_margin.unwrap() - 2.0).abs() < 1e-12);
        assert!((r.throughput_margin.unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn exactly_on_target_counts_as_good() {
        let r = classify(&wf(600.0)).unwrap();
        assert_eq!(r.zone, Zone::GoodMakespanGoodThroughput);
    }

    #[test]
    fn mixed_zones() {
        // Deadline met but a stricter rate target missed (Fig. 2b yellow).
        let r = classify_point(
            Seconds::secs(500.0),
            TasksPerSec(6.0 / 500.0),
            Some(Seconds::secs(600.0)),
            Some(TasksPerSec(0.1)),
        );
        assert_eq!(r.zone, Zone::GoodMakespanPoorThroughput);
        assert_eq!(r.zone.color(), "yellow");

        // Rate met but deadline missed (orange).
        let r = classify_point(
            Seconds::secs(700.0),
            TasksPerSec(0.2),
            Some(Seconds::secs(600.0)),
            Some(TasksPerSec(0.1)),
        );
        assert_eq!(r.zone, Zone::PoorMakespanGoodThroughput);
        assert_eq!(r.zone.color(), "orange");
        assert!(!r.zone.good_makespan());
        assert!(r.zone.good_throughput());
    }

    #[test]
    fn absent_targets_are_satisfied() {
        let r = classify_point(Seconds::secs(1e9), TasksPerSec(1e-12), None, None);
        assert_eq!(r.zone, Zone::GoodMakespanGoodThroughput);
        assert!(r.makespan_margin.is_none());
        assert!(r.throughput_margin.is_none());
    }

    #[test]
    fn no_makespan_errors() {
        let c = WorkflowCharacterization::builder("x").build().unwrap();
        assert!(classify(&c).is_err());
    }
}
