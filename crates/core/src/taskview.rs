//! The task view of the Workflow Roofline (Fig. 7c): each task plotted
//! individually against its own per-node ceilings, guiding finer-grained
//! optimization. The lower a task sits, the longer its makespan; the
//! farther it sits below its own binding ceiling, the more node headroom
//! it has.

use crate::error::CoreError;
use crate::machine::Machine;
use crate::resource::ResourceId;
use crate::units::{Seconds, TasksPerSec, Work};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One task's node-level characterization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskCharacterization {
    /// Task name ("Epsilon", "Sigma", ...).
    pub name: String,
    /// Nodes this task occupies.
    pub nodes: u64,
    /// Measured wall-clock time of the task, when available.
    pub measured: Option<Seconds>,
    /// Per-node work for this task alone, keyed by node resource.
    pub node_volumes: BTreeMap<ResourceId, Work>,
}

impl TaskCharacterization {
    /// Builds a task characterization.
    pub fn new(name: impl Into<String>, nodes: u64) -> Self {
        Self {
            name: name.into(),
            nodes,
            measured: None,
            node_volumes: BTreeMap::new(),
        }
    }

    /// Sets the measured time.
    pub fn with_measured(mut self, t: Seconds) -> Self {
        self.measured = Some(t);
        self
    }

    /// Adds per-node work.
    pub fn with_node_volume(mut self, id: impl Into<ResourceId>, work: Work) -> Self {
        self.node_volumes.insert(id.into(), work);
        self
    }
}

/// One plotted point in the task view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskPoint {
    /// Task name.
    pub name: String,
    /// Nodes used.
    pub nodes: u64,
    /// Ideal time on each node resource (`volume / peak`) -- each is a
    /// per-task diagonal ceiling `y(x) = x / t`.
    pub ceiling_times: BTreeMap<ResourceId, Seconds>,
    /// Measured time, when available.
    pub measured: Option<Seconds>,
    /// Achieved task throughput `1 / measured` at `x = 1`.
    pub tps: Option<TasksPerSec>,
    /// `min(ceiling_times) / measured`: fraction of the binding node
    /// ceiling achieved (Fig. 7c: Epsilon sits farther from its ceiling
    /// than Sigma).
    pub node_efficiency: Option<f64>,
}

impl TaskPoint {
    /// The binding (slowest) node resource and its ideal time.
    pub fn binding(&self) -> Option<(&ResourceId, Seconds)> {
        self.ceiling_times
            .iter()
            .max_by(|a, b| a.1.get().partial_cmp(&b.1.get()).expect("finite"))
            .map(|(id, t)| (id, *t))
    }
}

/// The assembled task view for one machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskView {
    /// Machine name.
    pub machine_name: String,
    /// One point per task.
    pub points: Vec<TaskPoint>,
}

impl TaskView {
    /// Builds the task view, checking resources and units against the
    /// machine.
    pub fn build(machine: &Machine, tasks: &[TaskCharacterization]) -> Result<Self, CoreError> {
        machine.validate()?;
        let mut points = Vec::with_capacity(tasks.len());
        for task in tasks {
            if task.nodes == 0 {
                return Err(CoreError::InvalidInput(format!(
                    "task {} uses zero nodes",
                    task.name
                )));
            }
            let mut ceiling_times = BTreeMap::new();
            for (id, work) in &task.node_volumes {
                let res = machine
                    .node_resource(id.as_str())
                    .ok_or_else(|| CoreError::UnknownResource(id.to_string()))?;
                if work.magnitude() == 0.0 {
                    continue;
                }
                let t = work
                    .time_at(res.peak_per_node)
                    .ok_or_else(|| CoreError::UnitMismatch {
                        resource: id.to_string(),
                        volume_unit: work.unit().to_string(),
                        peak_unit: res.peak_per_node.unit().to_string(),
                    })?;
                ceiling_times.insert(id.clone(), t);
            }
            let tps = task.measured.map(|m| TasksPerSec(1.0 / m.get()));
            let node_efficiency = match (task.measured, ceiling_times.values().next()) {
                (Some(m), Some(_)) => {
                    let binding = ceiling_times
                        .values()
                        .map(|t| t.get())
                        .fold(f64::NEG_INFINITY, f64::max);
                    Some(binding / m.get())
                }
                _ => None,
            };
            points.push(TaskPoint {
                name: task.name.clone(),
                nodes: task.nodes,
                ceiling_times,
                measured: task.measured,
                tps,
                node_efficiency,
            });
        }
        Ok(TaskView {
            machine_name: machine.name.clone(),
            points,
        })
    }

    /// The task dominating the workflow makespan: the one with the
    /// longest measured time (lowest dot in Fig. 7c).
    pub fn dominant_task(&self) -> Option<&TaskPoint> {
        self.points
            .iter()
            .filter(|p| p.measured.is_some())
            .max_by(|a, b| {
                a.measured
                    .unwrap()
                    .get()
                    .partial_cmp(&b.measured.unwrap().get())
                    .expect("finite")
            })
    }

    /// The measured task with the most headroom to its own node ceiling:
    /// the best candidate for node-level optimization.
    pub fn best_optimization_candidate(&self) -> Option<&TaskPoint> {
        self.points
            .iter()
            .filter(|p| p.node_efficiency.is_some())
            .min_by(|a, b| {
                a.node_efficiency
                    .unwrap()
                    .partial_cmp(&b.node_efficiency.unwrap())
                    .expect("finite")
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines;
    use crate::resource::ids;
    use crate::units::Flops;

    /// The BGW tasks of Fig. 7c: Epsilon 1164 PFLOPs, Sigma 3226 PFLOPs.
    fn bgw_tasks(nodes: u64, te: f64, ts: f64) -> Vec<TaskCharacterization> {
        vec![
            TaskCharacterization::new("Epsilon", nodes)
                .with_measured(Seconds::secs(te))
                .with_node_volume(
                    ids::COMPUTE,
                    Work::Flops(Flops::pflops(1164.0) / nodes as f64),
                ),
            TaskCharacterization::new("Sigma", nodes)
                .with_measured(Seconds::secs(ts))
                .with_node_volume(
                    ids::COMPUTE,
                    Work::Flops(Flops::pflops(3226.0) / nodes as f64),
                ),
        ]
    }

    #[test]
    fn bgw_ceiling_times_match_fig7c() {
        let m = machines::perlmutter_gpu();
        let view = TaskView::build(&m, &bgw_tasks(64, 1200.0, 2985.0)).unwrap();
        let eps = &view.points[0];
        let sig = &view.points[1];
        // Paper labels: ~490 s per Epsilon and ~1289 s per Sigma at 64
        // nodes (our exact arithmetic: 469 s and 1300 s).
        let te = eps.ceiling_times.get(ids::COMPUTE).unwrap().get();
        let ts = sig.ceiling_times.get(ids::COMPUTE).unwrap().get();
        assert!((te - 468.8).abs() < 1.0, "epsilon {te}");
        assert!((ts - 1299.4).abs() < 1.0, "sigma {ts}");

        // At 1024 nodes: ~28 s and ~79 s.
        let view = TaskView::build(&m, &bgw_tasks(1024, 180.0, 225.0)).unwrap();
        let te = view.points[0]
            .ceiling_times
            .get(ids::COMPUTE)
            .unwrap()
            .get();
        let ts = view.points[1]
            .ceiling_times
            .get(ids::COMPUTE)
            .unwrap()
            .get();
        assert!((te - 29.3).abs() < 0.5, "epsilon {te}");
        assert!((ts - 81.2).abs() < 0.5, "sigma {ts}");
    }

    #[test]
    fn sigma_dominates_the_makespan() {
        let m = machines::perlmutter_gpu();
        let view = TaskView::build(&m, &bgw_tasks(64, 1200.0, 2985.0)).unwrap();
        assert_eq!(view.dominant_task().unwrap().name, "Sigma");
    }

    #[test]
    fn epsilon_is_the_optimization_candidate_at_1024() {
        // At 1024 nodes Epsilon reaches ~16% of its ceiling, Sigma ~36%:
        // Epsilon is farther from the node ceiling (paper's observation).
        let m = machines::perlmutter_gpu();
        let view = TaskView::build(&m, &bgw_tasks(1024, 180.0, 225.0)).unwrap();
        let cand = view.best_optimization_candidate().unwrap();
        assert_eq!(cand.name, "Epsilon");
        let e = cand.node_efficiency.unwrap();
        assert!((e - 0.163).abs() < 0.01, "eff {e}");
    }

    #[test]
    fn binding_resource_is_reported() {
        let m = machines::perlmutter_gpu();
        let task = TaskCharacterization::new("t", 1)
            .with_node_volume(ids::COMPUTE, Work::Flops(Flops::tflops(38.8)))
            .with_node_volume(
                ids::HBM,
                Work::Bytes(crate::units::Bytes::gb(6220.0 * 10.0)),
            );
        let view = TaskView::build(&m, &[task]).unwrap();
        // HBM: 10 s vs compute: 1 s -- HBM binds.
        let (id, t) = view.points[0].binding().unwrap();
        assert_eq!(id.as_str(), ids::HBM);
        assert!((t.get() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn errors_on_bad_tasks() {
        let m = machines::perlmutter_gpu();
        let zero_nodes = TaskCharacterization::new("t", 0);
        assert!(TaskView::build(&m, &[zero_nodes]).is_err());
        let unknown = TaskCharacterization::new("t", 1)
            .with_node_volume("nope", Work::Flops(Flops::tflops(1.0)));
        assert!(matches!(
            TaskView::build(&m, &[unknown]),
            Err(CoreError::UnknownResource(_))
        ));
        let mismatch = TaskCharacterization::new("t", 1)
            .with_node_volume(ids::COMPUTE, Work::Bytes(crate::units::Bytes::gb(1.0)));
        assert!(matches!(
            TaskView::build(&m, &[mismatch]),
            Err(CoreError::UnitMismatch { .. })
        ));
    }

    #[test]
    fn unmeasured_tasks_have_no_tps() {
        let m = machines::perlmutter_gpu();
        let t = TaskCharacterization::new("plan", 4)
            .with_node_volume(ids::COMPUTE, Work::Flops(Flops::tflops(1.0)));
        let view = TaskView::build(&m, &[t]).unwrap();
        assert!(view.points[0].tps.is_none());
        assert!(view.points[0].node_efficiency.is_none());
        assert!(view.dominant_task().is_none());
        assert!(view.best_optimization_candidate().is_none());
    }
}
