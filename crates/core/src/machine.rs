//! Machine (architecture) characterization: the peak node- and
//! system-level capabilities that define Workflow Roofline ceilings.
//!
//! A [`Machine`] mirrors Section III-A of the paper: per-node peaks
//! (compute FLOPS, memory bandwidth, PCIe bandwidth) become *node
//! ceilings*; shared capacities (file system, interconnect, external
//! links) become *system ceilings*; the total node count produces the
//! *system parallelism wall*.

use crate::error::CoreError;
use crate::resource::{ResourceId, SystemScaling};
use crate::units::{BytesPerSec, Rate, WorkUnit};
use serde::{Deserialize, Serialize};

/// A node-local capability: each node owns `peak_per_node` of it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeResource {
    /// Resource identity matched against workflow node volumes.
    pub id: ResourceId,
    /// Human-readable label for plots ("GPU FLOPS", "HBM", ...).
    pub label: String,
    /// Peak rate of one node.
    pub peak_per_node: Rate,
}

/// A system-wide shared capability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemResource {
    /// Resource identity matched against workflow system volumes.
    pub id: ResourceId,
    /// Human-readable label for plots ("File System", "System Network").
    pub label: String,
    /// Peak bandwidth: aggregate, or per node in use (see `scaling`).
    pub peak: BytesPerSec,
    /// How aggregate capacity scales with the workflow's allocation.
    pub scaling: SystemScaling,
}

impl SystemResource {
    /// Aggregate capacity available to a workflow occupying
    /// `nodes_in_use` nodes.
    pub fn aggregate_for(&self, nodes_in_use: f64) -> BytesPerSec {
        match self.scaling {
            SystemScaling::Aggregate => self.peak,
            SystemScaling::PerNodeInUse => self.peak * nodes_in_use,
        }
    }
}

/// An HPC system (or one partition of it) characterized for the model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    /// Machine name ("Perlmutter GPU", ...).
    pub name: String,
    /// Nodes available to the workflow (queue or partition size).
    pub total_nodes: u64,
    /// Node-local capabilities (diagonal ceilings).
    pub node_resources: Vec<NodeResource>,
    /// Shared capabilities (horizontal ceilings).
    pub system_resources: Vec<SystemResource>,
}

impl Machine {
    /// Starts a machine description; add resources with the builder
    /// methods and finish with [`MachineBuilder::build`].
    pub fn builder(name: impl Into<String>, total_nodes: u64) -> MachineBuilder {
        MachineBuilder {
            machine: Machine {
                name: name.into(),
                total_nodes,
                node_resources: Vec::new(),
                system_resources: Vec::new(),
            },
        }
    }

    /// Looks up a node resource by id.
    pub fn node_resource(&self, id: &str) -> Option<&NodeResource> {
        self.node_resources.iter().find(|r| r.id.as_str() == id)
    }

    /// Looks up a system resource by id.
    pub fn system_resource(&self, id: &str) -> Option<&SystemResource> {
        self.system_resources.iter().find(|r| r.id.as_str() == id)
    }

    /// The system parallelism wall for tasks that each need
    /// `nodes_per_task` nodes: `floor(total_nodes / nodes_per_task)`.
    ///
    /// Returns an error when a single task does not fit on the machine.
    pub fn parallelism_wall(&self, nodes_per_task: u64) -> Result<u64, CoreError> {
        if nodes_per_task == 0 {
            return Err(CoreError::InvalidInput(
                "nodes_per_task must be at least 1".into(),
            ));
        }
        let wall = self.total_nodes / nodes_per_task;
        if wall == 0 {
            return Err(CoreError::TaskTooLarge {
                nodes_per_task,
                total_nodes: self.total_nodes,
            });
        }
        Ok(wall)
    }

    /// Returns a copy with one resource's peak scaled by `factor`
    /// (used for contention scenarios, e.g. LCLS "bad days" where the
    /// external bandwidth drops 5x).
    pub fn with_scaled_resource(&self, id: &str, factor: f64) -> Result<Machine, CoreError> {
        if !(factor.is_finite() && factor > 0.0) {
            return Err(CoreError::InvalidInput(format!(
                "scale factor must be positive and finite, got {factor}"
            )));
        }
        let mut m = self.clone();
        let mut found = false;
        for r in &mut m.node_resources {
            if r.id.as_str() == id {
                r.peak_per_node = r.peak_per_node.scale(factor);
                found = true;
            }
        }
        for r in &mut m.system_resources {
            if r.id.as_str() == id {
                r.peak = r.peak * factor;
                found = true;
            }
        }
        if found {
            Ok(m)
        } else {
            Err(CoreError::UnknownResource(id.to_owned()))
        }
    }

    /// Validates internal consistency: positive peaks, unique ids,
    /// non-zero node count.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.total_nodes == 0 {
            return Err(CoreError::InvalidInput(format!(
                "machine {} has zero nodes",
                self.name
            )));
        }
        let mut seen = std::collections::BTreeSet::new();
        for r in &self.node_resources {
            if !seen.insert(r.id.clone()) {
                return Err(CoreError::DuplicateResource(r.id.to_string()));
            }
            if !(r.peak_per_node.magnitude().is_finite() && r.peak_per_node.magnitude() > 0.0) {
                return Err(CoreError::InvalidInput(format!(
                    "node resource {} has non-positive peak",
                    r.id
                )));
            }
        }
        for r in &self.system_resources {
            if !seen.insert(r.id.clone()) {
                return Err(CoreError::DuplicateResource(r.id.to_string()));
            }
            if !(r.peak.get().is_finite() && r.peak.get() > 0.0) {
                return Err(CoreError::InvalidInput(format!(
                    "system resource {} has non-positive peak",
                    r.id
                )));
            }
        }
        Ok(())
    }

    /// The dimension (bytes vs flops) a given node resource is measured in.
    pub fn node_unit(&self, id: &str) -> Option<WorkUnit> {
        self.node_resource(id).map(|r| r.peak_per_node.unit())
    }
}

/// Fluent construction of [`Machine`] values.
#[derive(Debug, Clone)]
pub struct MachineBuilder {
    machine: Machine,
}

impl MachineBuilder {
    /// Adds a node-local capability.
    pub fn node(
        mut self,
        id: impl Into<ResourceId>,
        label: impl Into<String>,
        peak_per_node: Rate,
    ) -> Self {
        self.machine.node_resources.push(NodeResource {
            id: id.into(),
            label: label.into(),
            peak_per_node,
        });
        self
    }

    /// Adds a shared system capability with a fixed aggregate peak.
    pub fn system(
        mut self,
        id: impl Into<ResourceId>,
        label: impl Into<String>,
        peak: BytesPerSec,
    ) -> Self {
        self.machine.system_resources.push(SystemResource {
            id: id.into(),
            label: label.into(),
            peak,
            scaling: SystemScaling::Aggregate,
        });
        self
    }

    /// Adds a shared system capability whose aggregate scales with the
    /// nodes in use (per-node NIC bandwidth).
    pub fn system_per_node(
        mut self,
        id: impl Into<ResourceId>,
        label: impl Into<String>,
        peak_per_node: BytesPerSec,
    ) -> Self {
        self.machine.system_resources.push(SystemResource {
            id: id.into(),
            label: label.into(),
            peak: peak_per_node,
            scaling: SystemScaling::PerNodeInUse,
        });
        self
    }

    /// Validates and returns the machine.
    pub fn build(self) -> Result<Machine, CoreError> {
        self.machine.validate()?;
        Ok(self.machine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ids;
    use crate::units::FlopsPerSec;

    fn toy() -> Machine {
        Machine::builder("toy", 100)
            .node(
                ids::COMPUTE,
                "FLOPS",
                Rate::FlopsPerSec(FlopsPerSec::tflops(10.0)),
            )
            .node(
                ids::DRAM,
                "DRAM",
                Rate::BytesPerSec(BytesPerSec::gbps(200.0)),
            )
            .system(ids::FILE_SYSTEM, "FS", BytesPerSec::tbps(1.0))
            .system_per_node(ids::NETWORK, "NIC", BytesPerSec::gbps(25.0))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_and_lookup() {
        let m = toy();
        assert_eq!(m.node_resource(ids::COMPUTE).unwrap().label, "FLOPS");
        assert_eq!(m.system_resource(ids::FILE_SYSTEM).unwrap().label, "FS");
        assert!(m.node_resource("nope").is_none());
        assert_eq!(m.node_unit(ids::COMPUTE), Some(WorkUnit::Flops));
        assert_eq!(m.node_unit(ids::DRAM), Some(WorkUnit::Bytes));
    }

    #[test]
    fn parallelism_wall_matches_paper_examples() {
        // 64-node tasks on the 1792-node PM-GPU partition: 28 parallel tasks.
        let pm = Machine::builder("pm", 1792).build().unwrap();
        assert_eq!(pm.parallelism_wall(64).unwrap(), 28);
        // 1024-node tasks: floor(1792/1024) = 1.
        assert_eq!(pm.parallelism_wall(1024).unwrap(), 1);
    }

    #[test]
    fn parallelism_wall_errors() {
        let m = toy();
        assert!(m.parallelism_wall(0).is_err());
        assert!(matches!(
            m.parallelism_wall(101),
            Err(CoreError::TaskTooLarge { .. })
        ));
    }

    #[test]
    fn per_node_scaling_aggregates() {
        let m = toy();
        let nic = m.system_resource(ids::NETWORK).unwrap();
        assert_eq!(nic.aggregate_for(64.0), BytesPerSec::gbps(1600.0));
        let fs = m.system_resource(ids::FILE_SYSTEM).unwrap();
        assert_eq!(fs.aggregate_for(64.0), BytesPerSec::tbps(1.0));
    }

    #[test]
    fn contention_scaling() {
        let m = toy();
        let bad = m.with_scaled_resource(ids::FILE_SYSTEM, 0.2).unwrap();
        assert_eq!(
            bad.system_resource(ids::FILE_SYSTEM).unwrap().peak,
            BytesPerSec::gbps(200.0)
        );
        assert!(m.with_scaled_resource("nope", 0.5).is_err());
        assert!(m.with_scaled_resource(ids::FILE_SYSTEM, 0.0).is_err());
        assert!(m.with_scaled_resource(ids::FILE_SYSTEM, f64::NAN).is_err());
    }

    #[test]
    fn validate_rejects_duplicates_and_bad_peaks() {
        let dup = Machine::builder("d", 10)
            .node(
                ids::COMPUTE,
                "a",
                Rate::FlopsPerSec(FlopsPerSec::tflops(1.0)),
            )
            .node(
                ids::COMPUTE,
                "b",
                Rate::FlopsPerSec(FlopsPerSec::tflops(2.0)),
            )
            .build();
        assert!(matches!(dup, Err(CoreError::DuplicateResource(_))));

        let zero = Machine::builder("z", 10)
            .system(ids::FILE_SYSTEM, "fs", BytesPerSec(0.0))
            .build();
        assert!(zero.is_err());

        let none = Machine::builder("n", 0).build();
        assert!(none.is_err());
    }
}
