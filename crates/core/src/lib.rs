//! # wrm-core — the Workflow Roofline Model
//!
//! A Rust implementation of the Workflow Roofline Model from
//! *“A Workflow Roofline Model for End-to-End Workflow Performance
//! Analysis”* (Ding et al., SC'24): a coarse-grained roofline that ties a
//! workflow's end-to-end throughput (tasks/second) and makespan to peak
//! node- and system-performance constraints.
//!
//! ## Model in one paragraph
//!
//! A workflow is characterized by its number of **parallel tasks** `x`,
//! its **total tasks**, per-node **FLOP/byte volumes**, and total
//! **system data volumes** ([`WorkflowCharacterization`]). A machine is
//! characterized by per-node peaks and shared-system peaks
//! ([`Machine`], presets in [`machines`]). Combining them yields a
//! [`RooflineModel`]: diagonal node ceilings, horizontal system ceilings,
//! and a vertical parallelism wall; the measured workflow appears as a
//! dot at `(parallel_tasks, total_tasks / makespan)`. The [`analysis`]
//! module classifies the dot (node-/system-/parallelism-bound, target
//! zones) and derives optimization advice; [`taskview`] breaks the
//! workflow into per-task points (Fig. 7c).
//!
//! ## Quick example
//!
//! ```
//! use wrm_core::prelude::*;
//!
//! // BerkeleyGW on Perlmutter GPU, 64 nodes per task (paper Fig. 7a).
//! let machine = machines::perlmutter_gpu();
//! let bgw = WorkflowCharacterization::builder("BerkeleyGW")
//!     .total_tasks(2.0)
//!     .parallel_tasks(1.0)
//!     .nodes_per_task(64)
//!     .makespan(Seconds::secs(4184.86))
//!     .node_volume(ids::COMPUTE, Work::Flops(Flops::pflops(4390.0) / 64.0))
//!     .system_volume(ids::FILE_SYSTEM, Bytes::gb(70.0))
//!     .build()
//!     .unwrap();
//! let model = RooflineModel::build(&machine, &bgw).unwrap();
//! assert_eq!(model.parallelism_wall, 28);
//! let eff = model.efficiency().unwrap();
//! assert!((eff - 0.42).abs() < 0.01); // the paper's "42% of node peak"
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod attribution;
pub mod charz;
pub mod dist;
pub mod error;
pub mod fingerprint;
pub mod machine;
pub mod machines;
pub mod projection;
pub mod resource;
pub mod roofline;
pub mod scaling;
pub mod taskview;
pub mod units;

pub use attribution::{classify, classify_terms, BindingStrength, BoundClass};
pub use charz::{CharacterizationBuilder, TargetSpec, WorkflowCharacterization};
pub use dist::Dist;
pub use error::CoreError;
pub use fingerprint::{fingerprint, fingerprint_value, Fnv1a};
pub use machine::{Machine, MachineBuilder, NodeResource, SystemResource};
pub use projection::{across_machines, required_peak, MachineProjection};
pub use resource::{ids, ResourceId, SystemScaling};
pub use roofline::{Ceiling, CeilingKind, RooflineModel, RooflinePoint};
pub use scaling::{amdahl_scalability, strong_scaling_trajectory, TrajectoryPoint};
pub use taskview::{TaskCharacterization, TaskPoint, TaskView};
pub use units::{
    Bytes, BytesPerSec, Flops, FlopsPerSec, Rate, Seconds, TasksPerSec, Work, WorkUnit,
};

/// Convenient glob import: `use wrm_core::prelude::*;`.
pub mod prelude {
    pub use crate::analysis::{
        advise, classify_bound, classify_zone, remove_overhead, scale_intra_task_parallelism,
        widen_batch, Advice, Audience, BoundKind, Direction, Zone,
    };
    pub use crate::charz::{TargetSpec, WorkflowCharacterization};
    pub use crate::error::CoreError;
    pub use crate::machine::Machine;
    pub use crate::machines;
    pub use crate::projection::{across_machines, required_peak, MachineProjection};
    pub use crate::resource::{ids, ResourceId, SystemScaling};
    pub use crate::roofline::{Ceiling, CeilingKind, RooflineModel, RooflinePoint};
    pub use crate::taskview::{TaskCharacterization, TaskView};
    pub use crate::units::{
        Bytes, BytesPerSec, Flops, FlopsPerSec, Rate, Seconds, TasksPerSec, Work, WorkUnit,
    };
}
