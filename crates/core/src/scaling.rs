//! Strong-scaling trajectories: the Fig. 2c trade-off swept over a range
//! of intra-task scaling factors under an Amdahl-style efficiency model.
//!
//! "The more you shift to intra-task parallelism, the easier it is to
//! hit makespan targets, but the harder it is to hit throughput
//! targets" — this module quantifies that sentence: for each scaling
//! factor `k` it applies [`scale_intra_task_parallelism`] with the
//! efficiency implied by a serial fraction, rebuilds the model, and
//! reports wall, envelope, predicted makespan, and target zones.

use crate::analysis::whatif::scale_intra_task_parallelism;
use crate::analysis::zones::{classify, ZoneReport};
use crate::charz::WorkflowCharacterization;
use crate::error::CoreError;
use crate::machine::Machine;
use crate::roofline::RooflineModel;
use crate::units::{Seconds, TasksPerSec};
use serde::{Deserialize, Serialize};

/// Amdahl-style strong-scaling efficiency: a task with serial fraction
/// `sigma` on `k`x the nodes achieves speedup `k / (1 + sigma (k-1))`,
/// i.e. scalability (efficiency of the extra nodes) `1 / (1 + sigma
/// (k-1))`.
pub fn amdahl_scalability(serial_fraction: f64, k: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&serial_fraction),
        "serial fraction must be in [0,1]"
    );
    assert!(k >= 1.0, "scaling factor must be >= 1");
    1.0 / (1.0 + serial_fraction * (k - 1.0))
}

/// One point of a trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryPoint {
    /// Intra-task scaling factor applied to the base configuration.
    pub k: f64,
    /// Nodes per task after scaling.
    pub nodes_per_task: u64,
    /// Parallel tasks after scaling (clamped at 1).
    pub parallel_tasks: f64,
    /// Parallelism wall.
    pub parallelism_wall: u64,
    /// Attainable envelope at the new parallelism.
    pub envelope: TasksPerSec,
    /// Predicted makespan (base makespan / scalability).
    pub predicted_makespan: Option<Seconds>,
    /// Predicted throughput.
    pub predicted_tps: Option<TasksPerSec>,
    /// Zone against the declared targets, when a makespan is predicted.
    pub zone: Option<ZoneReport>,
}

/// Sweeps intra-task scaling factors `ks` (each >= 1, relative to the
/// base characterization) under a serial fraction `sigma`.
pub fn strong_scaling_trajectory(
    machine: &Machine,
    base: &WorkflowCharacterization,
    ks: &[f64],
    serial_fraction: f64,
) -> Result<Vec<TrajectoryPoint>, CoreError> {
    let mut out = Vec::with_capacity(ks.len());
    for &k in ks {
        if !(k.is_finite() && k >= 1.0) {
            return Err(CoreError::InvalidInput(format!(
                "scaling factors must be >= 1, got {k}"
            )));
        }
        let s = amdahl_scalability(serial_fraction, k);
        let wf = scale_intra_task_parallelism(base, k, s)?;
        let model = RooflineModel::build_lenient(machine, &wf)?;
        let envelope = model
            .envelope_at(wf.parallel_tasks)
            .unwrap_or(TasksPerSec(0.0));
        let predicted_tps = wf.makespan.map(|m| TasksPerSec(wf.total_tasks / m.get()));
        let zone = wf.makespan.and_then(|_| classify(&wf).ok());
        out.push(TrajectoryPoint {
            k,
            nodes_per_task: wf.nodes_per_task,
            parallel_tasks: wf.parallel_tasks,
            parallelism_wall: model.parallelism_wall,
            envelope,
            predicted_makespan: wf.makespan,
            predicted_tps,
            zone,
        });
    }
    Ok(out)
}

/// The smallest factor in `ks` whose predicted makespan meets the base
/// characterization's makespan target (None when no point does, or no
/// target/makespan exists).
pub fn smallest_k_meeting_deadline(trajectory: &[TrajectoryPoint]) -> Option<f64> {
    trajectory
        .iter()
        .filter(|p| p.zone.as_ref().is_some_and(|z| z.zone.good_makespan()))
        .map(|p| p.k)
        .fold(None, |acc: Option<f64>, k| {
            Some(acc.map_or(k, |a| a.min(k)))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines;
    use crate::resource::ids;
    use crate::units::{Flops, Work};

    fn base() -> WorkflowCharacterization {
        WorkflowCharacterization::builder("ensemble")
            .total_tasks(16.0)
            .parallel_tasks(16.0)
            .nodes_per_task(16)
            .makespan(Seconds::secs(2000.0))
            .node_volume(ids::COMPUTE, Work::Flops(Flops::pflops(30.0)))
            .target_makespan(Seconds::secs(1200.0))
            .target_throughput(TasksPerSec(0.01))
            .build()
            .unwrap()
    }

    #[test]
    fn amdahl_limits() {
        assert!((amdahl_scalability(0.0, 8.0) - 1.0).abs() < 1e-12);
        // sigma = 1: no speedup at all -> scalability 1/k.
        assert!((amdahl_scalability(1.0, 4.0) - 0.25).abs() < 1e-12);
        // Monotone decreasing in k.
        assert!(amdahl_scalability(0.1, 2.0) > amdahl_scalability(0.1, 8.0));
    }

    #[test]
    #[should_panic(expected = "serial fraction")]
    fn amdahl_rejects_bad_sigma() {
        amdahl_scalability(1.5, 2.0);
    }

    #[test]
    fn trajectory_trades_wall_for_makespan() {
        let ks = [1.0, 2.0, 4.0, 8.0];
        let traj =
            strong_scaling_trajectory(&machines::perlmutter_gpu(), &base(), &ks, 0.05).unwrap();
        assert_eq!(traj.len(), 4);
        // Walls shrink monotonically; predicted makespans grow with the
        // accumulated inefficiency (makespan / scalability).
        for w in traj.windows(2) {
            assert!(w[1].parallelism_wall <= w[0].parallelism_wall);
            assert!(
                w[1].predicted_makespan.unwrap().get() >= w[0].predicted_makespan.unwrap().get()
            );
        }
        // k=1 is the identity.
        assert_eq!(traj[0].nodes_per_task, 16);
        assert!((traj[0].predicted_makespan.unwrap().get() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn perfect_scaling_keeps_makespan_constant() {
        let ks = [1.0, 2.0, 4.0];
        let traj =
            strong_scaling_trajectory(&machines::perlmutter_gpu(), &base(), &ks, 0.0).unwrap();
        for p in &traj {
            assert!((p.predicted_makespan.unwrap().get() - 2000.0).abs() < 1e-9);
        }
        // Parallel tasks halve at each doubling.
        assert!((traj[1].parallel_tasks - 8.0).abs() < 1e-12);
        assert!((traj[2].parallel_tasks - 4.0).abs() < 1e-12);
    }

    #[test]
    fn deadline_finder() {
        // The base misses its 1200 s deadline (2000 s); under Amdahl
        // scaling, no k can shrink the *ensemble* makespan in this
        // transform (each slot runs k x the members k x faster at best),
        // so the finder returns None with sigma > 0.
        let ks = [1.0, 2.0, 4.0, 8.0];
        let traj =
            strong_scaling_trajectory(&machines::perlmutter_gpu(), &base(), &ks, 0.1).unwrap();
        assert_eq!(smallest_k_meeting_deadline(&traj), None);

        // A workflow already meeting its deadline reports k = 1.
        let mut ok = base();
        ok.targets.makespan = Some(Seconds::secs(2500.0));
        let traj = strong_scaling_trajectory(&machines::perlmutter_gpu(), &ok, &ks, 0.0).unwrap();
        assert_eq!(smallest_k_meeting_deadline(&traj), Some(1.0));
    }

    #[test]
    fn invalid_factors_are_rejected() {
        let err = strong_scaling_trajectory(&machines::perlmutter_gpu(), &base(), &[0.5], 0.0);
        assert!(err.is_err());
        let err = strong_scaling_trajectory(&machines::perlmutter_gpu(), &base(), &[f64::NAN], 0.0);
        assert!(err.is_err());
    }
}
