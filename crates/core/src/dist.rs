//! Duration/volume distributions for Monte-Carlo replication.
//!
//! The paper's WRM dot is computed from a single measured makespan, but
//! real task durations are distributions, not points (ROADMAP item 3).
//! A [`Dist`] describes how one phase quantity (FLOPs, bytes, or
//! seconds) varies across replications. This crate only defines the
//! *data type* — parameters, closed-form moments, and support bounds —
//! because `wrm-core` carries no RNG dependency; sampling lives in
//! `wrm_sim::mc`, which draws from these descriptions with a
//! per-replication splittable seed.
//!
//! Support bounds ([`Dist::bounds`]) are the contract the analytic
//! envelope relies on: every sample the Monte-Carlo engine draws is
//! guaranteed to land inside `[lo, hi]`, so a `certify` run on the
//! bound-substituted workflow brackets every sampled makespan. For the
//! lognormal this requires the sampler to clamp its standard normal
//! draw to `±`[`LOGNORMAL_Z_CLAMP`]; the bounds here bake in the same
//! clamp so the two sides cannot drift apart.

use serde::{Deserialize, Serialize};

/// The standard-normal clamp applied by the lognormal sampler (and
/// assumed by [`Dist::bounds`]): draws are truncated to `±8` sigma,
/// keeping the support finite without measurably distorting the
/// distribution (P(|z| > 8) ≈ 1e-15).
pub const LOGNORMAL_Z_CLAMP: f64 = 8.0;

/// A univariate distribution over one phase quantity.
///
/// Serialized with an internal `"dist"` tag, so specs round-trip
/// through JSON and the canonical fingerprint covers every parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "dist", rename_all = "snake_case")]
pub enum Dist {
    /// A point mass: every replication sees exactly `value`.
    Point {
        /// The constant value.
        value: f64,
    },
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
    /// Lognormal parameterized by its median (`exp(mu)`) and the sigma
    /// of the underlying normal — the WfBench/task-survey convention,
    /// where median is in the phase's natural unit and sigma is
    /// dimensionless relative spread.
    LogNormal {
        /// Median of the distribution (`exp(mu)`), in quantity units.
        median: f64,
        /// Sigma of the underlying normal (dimensionless, `>= 0`).
        sigma: f64,
    },
    /// Triangular on `[lo, hi]` with mode `mode`.
    Triangular {
        /// Inclusive lower bound.
        lo: f64,
        /// Most likely value (`lo <= mode <= hi`).
        mode: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
    /// An empirical weighted sample set: each replication draws one of
    /// the values with probability proportional to its weight.
    Empirical {
        /// `(value, weight)` pairs; weights need not be normalized.
        samples: Vec<(f64, f64)>,
    },
}

impl Dist {
    /// The distribution mean — the nominal the compiler lowers into
    /// the plain phase quantity, so deterministic `simulate`/`certify`
    /// runs see the expected workload.
    #[must_use]
    pub fn mean(&self) -> f64 {
        match self {
            Dist::Point { value } => *value,
            Dist::Uniform { lo, hi } => 0.5 * (lo + hi),
            Dist::LogNormal { median, sigma } => median * (0.5 * sigma * sigma).exp(),
            Dist::Triangular { lo, mode, hi } => (lo + mode + hi) / 3.0,
            Dist::Empirical { samples } => {
                let total: f64 = samples.iter().map(|(_, w)| w).sum();
                if total <= 0.0 {
                    return f64::NAN;
                }
                samples.iter().map(|(v, w)| v * w).sum::<f64>() / total
            }
        }
    }

    /// The support `[lo, hi]`: every sample falls inside (the lognormal
    /// bound assumes the sampler's `±`[`LOGNORMAL_Z_CLAMP`] clamp).
    #[must_use]
    pub fn bounds(&self) -> (f64, f64) {
        match self {
            Dist::Point { value } => (*value, *value),
            Dist::Uniform { lo, hi } | Dist::Triangular { lo, hi, .. } => (*lo, *hi),
            Dist::LogNormal { median, sigma } => (
                median * (-LOGNORMAL_Z_CLAMP * sigma).exp(),
                median * (LOGNORMAL_Z_CLAMP * sigma).exp(),
            ),
            Dist::Empirical { samples } => samples
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &(v, _)| {
                    (lo.min(v), hi.max(v))
                }),
        }
    }

    /// `Some(value)` when the distribution is a point mass in disguise
    /// (zero spread) — the degenerate-collapse detector's predicate.
    #[must_use]
    pub fn as_point(&self) -> Option<f64> {
        match self {
            Dist::Point { value } => Some(*value),
            Dist::Uniform { lo, hi } => (lo == hi).then_some(*lo),
            Dist::LogNormal { median, sigma } => (*sigma == 0.0).then_some(*median),
            Dist::Triangular { lo, mode, hi } => (lo == mode && mode == hi).then_some(*lo),
            Dist::Empirical { samples } => {
                let first = samples.first()?.0;
                samples.iter().all(|&(v, _)| v == first).then_some(first)
            }
        }
    }

    /// Parameter validation; `Err` carries a human-readable reason.
    /// Mirrors lint rule `E011` (invalid-distribution) so the compiler
    /// backstop and the linter reject exactly the same specs.
    pub fn validate(&self) -> Result<(), String> {
        fn finite(name: &str, v: f64) -> Result<(), String> {
            if v.is_finite() {
                Ok(())
            } else {
                Err(format!("{name} must be finite, got {v}"))
            }
        }
        match self {
            Dist::Point { value } => {
                finite("value", *value)?;
                if *value < 0.0 {
                    return Err(format!("value must be >= 0, got {value}"));
                }
            }
            Dist::Uniform { lo, hi } => {
                finite("lo", *lo)?;
                finite("hi", *hi)?;
                if *lo < 0.0 {
                    return Err(format!("lo must be >= 0, got {lo}"));
                }
                if lo > hi {
                    return Err(format!("lo ({lo}) must not exceed hi ({hi})"));
                }
            }
            Dist::LogNormal { median, sigma } => {
                finite("median", *median)?;
                finite("sigma", *sigma)?;
                if *median < 0.0 {
                    return Err(format!("median must be >= 0, got {median}"));
                }
                if *sigma < 0.0 {
                    return Err(format!("sigma must be >= 0, got {sigma}"));
                }
            }
            Dist::Triangular { lo, mode, hi } => {
                finite("lo", *lo)?;
                finite("mode", *mode)?;
                finite("hi", *hi)?;
                if *lo < 0.0 {
                    return Err(format!("lo must be >= 0, got {lo}"));
                }
                if lo > hi {
                    return Err(format!("lo ({lo}) must not exceed hi ({hi})"));
                }
                if mode < lo || mode > hi {
                    return Err(format!("mode ({mode}) must lie in [{lo}, {hi}]"));
                }
            }
            Dist::Empirical { samples } => {
                if samples.is_empty() {
                    return Err("empirical distribution needs at least one sample".into());
                }
                for &(v, w) in samples {
                    finite("sample value", v)?;
                    finite("sample weight", w)?;
                    if v < 0.0 {
                        return Err(format!("sample values must be >= 0, got {v}"));
                    }
                    if w <= 0.0 {
                        return Err(format!("sample weights must be > 0, got {w}"));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_are_closed_form() {
        assert_eq!(Dist::Point { value: 3.0 }.mean(), 3.0);
        assert_eq!(Dist::Uniform { lo: 2.0, hi: 4.0 }.mean(), 3.0);
        let ln = Dist::LogNormal {
            median: 10.0,
            sigma: 0.5,
        };
        assert!((ln.mean() - 10.0 * (0.125f64).exp()).abs() < 1e-12);
        assert_eq!(
            Dist::Triangular {
                lo: 1.0,
                mode: 2.0,
                hi: 6.0
            }
            .mean(),
            3.0
        );
        let emp = Dist::Empirical {
            samples: vec![(1.0, 1.0), (3.0, 3.0)],
        };
        assert!((emp.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn bounds_contain_mean() {
        let dists = [
            Dist::Point { value: 5.0 },
            Dist::Uniform { lo: 1.0, hi: 9.0 },
            Dist::LogNormal {
                median: 10.0,
                sigma: 0.3,
            },
            Dist::Triangular {
                lo: 1.0,
                mode: 4.0,
                hi: 9.0,
            },
            Dist::Empirical {
                samples: vec![(2.0, 1.0), (8.0, 1.0)],
            },
        ];
        for d in &dists {
            let (lo, hi) = d.bounds();
            let mean = d.mean();
            assert!(lo <= mean && mean <= hi, "{d:?}: [{lo}, {hi}] vs {mean}");
        }
    }

    #[test]
    fn point_mass_detection() {
        assert_eq!(Dist::Point { value: 2.0 }.as_point(), Some(2.0));
        assert_eq!(Dist::Uniform { lo: 3.0, hi: 3.0 }.as_point(), Some(3.0));
        assert_eq!(Dist::Uniform { lo: 3.0, hi: 4.0 }.as_point(), None);
        assert_eq!(
            Dist::LogNormal {
                median: 7.0,
                sigma: 0.0
            }
            .as_point(),
            Some(7.0)
        );
        assert_eq!(
            Dist::Triangular {
                lo: 1.0,
                mode: 1.0,
                hi: 1.0
            }
            .as_point(),
            Some(1.0)
        );
        assert_eq!(
            Dist::Empirical {
                samples: vec![(4.0, 1.0), (4.0, 2.0)]
            }
            .as_point(),
            Some(4.0)
        );
        assert_eq!(
            Dist::Empirical {
                samples: vec![(4.0, 1.0), (5.0, 2.0)]
            }
            .as_point(),
            None
        );
    }

    #[test]
    fn validation_rejects_bad_params() {
        assert!(Dist::Uniform { lo: 2.0, hi: 1.0 }.validate().is_err());
        assert!(Dist::LogNormal {
            median: 10.0,
            sigma: -0.5
        }
        .validate()
        .is_err());
        assert!(Dist::LogNormal {
            median: f64::NAN,
            sigma: 0.1
        }
        .validate()
        .is_err());
        assert!(Dist::Empirical { samples: vec![] }.validate().is_err());
        assert!(Dist::Empirical {
            samples: vec![(1.0, 0.0)]
        }
        .validate()
        .is_err());
        assert!(Dist::Triangular {
            lo: 1.0,
            mode: 5.0,
            hi: 3.0
        }
        .validate()
        .is_err());
        assert!(Dist::Uniform { lo: 1.0, hi: 2.0 }.validate().is_ok());
    }

    #[test]
    fn serde_round_trip_with_tag() {
        let d = Dist::LogNormal {
            median: 120.0,
            sigma: 0.3,
        };
        let json = serde_json::to_string(&d).unwrap();
        assert!(json.contains("\"dist\":\"log_normal\""), "{json}");
        let back: Dist = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
