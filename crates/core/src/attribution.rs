//! Binding-ceiling attribution: which bound term binds in *all*
//! admissible schedules vs. *some*.
//!
//! The two-sided makespan certifier (wrm-sim's `certify`) decomposes a
//! workflow's certified interval into competing terms — the dependency
//! chain, per-channel aggregate floors, the node-pool occupancy floor —
//! and the analogous per-task decomposition into phase-class intervals.
//! Each term contributes an interval `[lo, hi]` of times it can account
//! for across admissible schedules; attribution compares a term against
//! the pointwise maximum of the others and places it on a three-point
//! lattice:
//!
//! * [`BindingStrength::Must`] — the term's *lower* end already reaches
//!   every other term's *upper* end: it attains the bound in every
//!   admissible schedule;
//! * [`BindingStrength::May`] — the term's upper end reaches some other
//!   term's lower end: there is an admissible schedule where it binds;
//! * [`BindingStrength::No`] — even the term's best case stays below
//!   the others: it can never bind.
//!
//! This is the static-analysis form of Ridgeline's simultaneous-ceiling
//! attribution: instead of one "binding ceiling" point, every ceiling
//! gets a certified position on the lattice.

use std::fmt;

/// The class of a bound term, for structured diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BoundClass {
    /// Node compute (FLOP) time.
    Compute,
    /// Node-local data movement (DRAM/HBM/PCIe).
    NodeResource,
    /// A shared system channel (file system, external link, fabric).
    SystemChannel,
    /// Node-pool occupancy (the parallelism wall as a time floor).
    NodePool,
    /// Fixed control-flow overhead.
    Overhead,
    /// The dependency-chain (critical path) term.
    Chain,
}

impl BoundClass {
    /// Stable lowercase identifier used in JSON/SARIF output.
    pub fn as_str(self) -> &'static str {
        match self {
            BoundClass::Compute => "compute",
            BoundClass::NodeResource => "node-resource",
            BoundClass::SystemChannel => "system-channel",
            BoundClass::NodePool => "node-pool",
            BoundClass::Overhead => "overhead",
            BoundClass::Chain => "chain",
        }
    }
}

impl fmt::Display for BoundClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a bound term sits on the must-bind / may-bind lattice.
/// Ordered: `No < May < Must`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BindingStrength {
    /// Provably never binds: even its best case stays below the others.
    No,
    /// Binds in at least one admissible schedule.
    May,
    /// Binds in every admissible schedule.
    Must,
}

impl BindingStrength {
    /// Stable lowercase identifier used in JSON/SARIF output.
    pub fn as_str(self) -> &'static str {
        match self {
            BindingStrength::No => "no",
            BindingStrength::May => "may",
            BindingStrength::Must => "must",
        }
    }
}

impl fmt::Display for BindingStrength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Classifies one bound term `[c_lo, c_hi]` against the pointwise
/// maximum `[other_lo, other_hi]` of every competing term.
///
/// A zero-width term at 0 never binds (an absent ceiling is not a
/// binding one). Intervals are assumed normalized (`lo <= hi`); NaN
/// ends classify as [`BindingStrength::No`], the conservative answer.
pub fn classify(c_lo: f64, c_hi: f64, other_lo: f64, other_hi: f64) -> BindingStrength {
    if c_hi.is_nan() || c_hi <= 0.0 {
        // The term contributes nothing.
        return BindingStrength::No;
    }
    if c_lo >= other_hi {
        return BindingStrength::Must;
    }
    if c_hi >= other_lo {
        return BindingStrength::May;
    }
    BindingStrength::No
}

/// Classifies every term of a decomposition against the max of the
/// others. `terms[i]` is `(lo, hi)`; the result is index-aligned.
pub fn classify_terms(terms: &[(f64, f64)]) -> Vec<BindingStrength> {
    terms
        .iter()
        .enumerate()
        .map(|(i, &(lo, hi))| {
            let (mut olo, mut ohi) = (0.0f64, 0.0f64);
            for (j, &(l, h)) in terms.iter().enumerate() {
                if j != i {
                    olo = olo.max(l);
                    ohi = ohi.max(h);
                }
            }
            classify(lo, hi, olo, ohi)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_is_ordered() {
        assert!(BindingStrength::No < BindingStrength::May);
        assert!(BindingStrength::May < BindingStrength::Must);
        assert_eq!(BindingStrength::Must.as_str(), "must");
        assert_eq!(BoundClass::SystemChannel.as_str(), "system-channel");
        assert_eq!(format!("{}", BoundClass::Chain), "chain");
    }

    #[test]
    fn dominant_term_must_binds() {
        // Term [10, 12] vs others peaking at 8: binds everywhere.
        assert_eq!(classify(10.0, 12.0, 5.0, 8.0), BindingStrength::Must);
        // Overlapping: [6, 9] vs [5, 8] — binds somewhere, not everywhere.
        assert_eq!(classify(6.0, 9.0, 5.0, 8.0), BindingStrength::May);
        // Strictly below: can never bind.
        assert_eq!(classify(1.0, 3.0, 5.0, 8.0), BindingStrength::No);
    }

    #[test]
    fn absent_terms_never_bind() {
        assert_eq!(classify(0.0, 0.0, 0.0, 0.0), BindingStrength::No);
        assert_eq!(classify(f64::NAN, f64::NAN, 1.0, 2.0), BindingStrength::No);
    }

    #[test]
    fn classify_terms_is_index_aligned() {
        let terms = [(10.0, 12.0), (5.0, 8.0), (0.0, 0.0)];
        let out = classify_terms(&terms);
        assert_eq!(
            out,
            vec![
                BindingStrength::Must,
                BindingStrength::No,
                BindingStrength::No
            ]
        );
        // Two identical nonzero terms: both may-bind, neither must.
        let out = classify_terms(&[(4.0, 6.0), (4.0, 6.0)]);
        assert_eq!(out, vec![BindingStrength::May, BindingStrength::May]);
    }

    #[test]
    fn ties_at_the_top_must_bind_when_exact() {
        // A point term equal to the others' point max: Must (it binds in
        // every schedule, jointly with the other).
        assert_eq!(classify(7.0, 7.0, 7.0, 7.0), BindingStrength::Must);
    }
}
