//! Strongly-typed quantities used throughout the Workflow Roofline Model.
//!
//! All quantities are stored in SI base units (`bytes`, `flops`, `seconds`)
//! as `f64`. Decimal SI prefixes are used (1 GB = 1e9 bytes), matching the
//! conventions of the paper and of HPC system white papers.
//!
//! The newtypes prevent the classic modelling bug of dividing a byte volume
//! by a FLOP rate: [`Work`] divided by [`Rate`] is only defined when the
//! units agree (see [`Work::time_at`]).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Formats a positive value with engineering (power-of-1000) prefixes.
pub(crate) fn si(value: f64, unit: &str) -> String {
    if value == 0.0 {
        return format!("0 {unit}");
    }
    if !value.is_finite() {
        return format!("{value} {unit}");
    }
    const PREFIXES: [(f64, &str); 7] = [
        (1e18, "E"),
        (1e15, "P"),
        (1e12, "T"),
        (1e9, "G"),
        (1e6, "M"),
        (1e3, "k"),
        (1.0, ""),
    ];
    let magnitude = value.abs();
    for (scale, prefix) in PREFIXES {
        if magnitude >= scale {
            let scaled = value / scale;
            // Up to 3 significant-ish digits, trimming trailing zeros.
            let text = if scaled >= 100.0 {
                format!("{scaled:.0}")
            } else if scaled >= 10.0 {
                format!("{scaled:.1}")
            } else {
                format!("{scaled:.2}")
            };
            let text = text.trim_end_matches('0').trim_end_matches('.');
            return format!("{text} {prefix}{unit}");
        }
    }
    format!("{value:.3e} {unit}")
}

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Raw value in base units.
            #[inline]
            pub fn get(self) -> f64 {
                self.0
            }

            /// True when the value is finite and non-negative.
            #[inline]
            pub fn is_valid(self) -> bool {
                self.0.is_finite() && self.0 >= 0.0
            }

            /// Component-wise minimum.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Component-wise maximum.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&si(self.0, $unit))
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }
    };
}

quantity!(
    /// A data volume in bytes (decimal SI: 1 GB = 1e9 bytes).
    Bytes,
    "B"
);
quantity!(
    /// A count of floating-point operations.
    Flops,
    "FLOP"
);
quantity!(
    /// A duration in seconds.
    Seconds,
    "s"
);
quantity!(
    /// A data rate in bytes per second.
    BytesPerSec,
    "B/s"
);
quantity!(
    /// A compute rate in FLOP per second.
    FlopsPerSec,
    "FLOP/s"
);
quantity!(
    /// Workflow throughput in tasks per second (the y-axis of the model).
    TasksPerSec,
    "task/s"
);

impl Bytes {
    /// Kilobytes (1e3 bytes).
    pub fn kb(v: f64) -> Self {
        Self(v * 1e3)
    }
    /// Megabytes (1e6 bytes).
    pub fn mb(v: f64) -> Self {
        Self(v * 1e6)
    }
    /// Gigabytes (1e9 bytes).
    pub fn gb(v: f64) -> Self {
        Self(v * 1e9)
    }
    /// Terabytes (1e12 bytes).
    pub fn tb(v: f64) -> Self {
        Self(v * 1e12)
    }
    /// Petabytes (1e15 bytes).
    pub fn pb(v: f64) -> Self {
        Self(v * 1e15)
    }
}

impl Flops {
    /// GigaFLOPs (1e9).
    pub fn gflops(v: f64) -> Self {
        Self(v * 1e9)
    }
    /// TeraFLOPs (1e12).
    pub fn tflops(v: f64) -> Self {
        Self(v * 1e12)
    }
    /// PetaFLOPs (1e15).
    pub fn pflops(v: f64) -> Self {
        Self(v * 1e15)
    }
}

impl Seconds {
    /// Whole seconds.
    pub fn secs(v: f64) -> Self {
        Self(v)
    }
    /// Minutes.
    pub fn minutes(v: f64) -> Self {
        Self(v * 60.0)
    }
    /// Hours.
    pub fn hours(v: f64) -> Self {
        Self(v * 3600.0)
    }
    /// Milliseconds.
    pub fn millis(v: f64) -> Self {
        Self(v * 1e-3)
    }
}

impl BytesPerSec {
    /// GB/s (1e9 bytes per second).
    pub fn gbps(v: f64) -> Self {
        Self(v * 1e9)
    }
    /// TB/s (1e12 bytes per second).
    pub fn tbps(v: f64) -> Self {
        Self(v * 1e12)
    }
    /// MB/s (1e6 bytes per second).
    pub fn mbps(v: f64) -> Self {
        Self(v * 1e6)
    }
}

impl FlopsPerSec {
    /// GFLOP/s.
    pub fn gflops(v: f64) -> Self {
        Self(v * 1e9)
    }
    /// TFLOP/s.
    pub fn tflops(v: f64) -> Self {
        Self(v * 1e12)
    }
    /// PFLOP/s.
    pub fn pflops(v: f64) -> Self {
        Self(v * 1e15)
    }
}

impl Div<BytesPerSec> for Bytes {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: BytesPerSec) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

impl Div<FlopsPerSec> for Flops {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: FlopsPerSec) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

impl Div<Seconds> for Bytes {
    type Output = BytesPerSec;
    #[inline]
    fn div(self, rhs: Seconds) -> BytesPerSec {
        BytesPerSec(self.0 / rhs.0)
    }
}

impl Div<Seconds> for Flops {
    type Output = FlopsPerSec;
    #[inline]
    fn div(self, rhs: Seconds) -> FlopsPerSec {
        FlopsPerSec(self.0 / rhs.0)
    }
}

impl Mul<Seconds> for BytesPerSec {
    type Output = Bytes;
    #[inline]
    fn mul(self, rhs: Seconds) -> Bytes {
        Bytes(self.0 * rhs.0)
    }
}

impl Mul<Seconds> for FlopsPerSec {
    type Output = Flops;
    #[inline]
    fn mul(self, rhs: Seconds) -> Flops {
        Flops(self.0 * rhs.0)
    }
}

/// The dimension of a work volume or a rate: data movement or computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkUnit {
    /// Data movement, measured in bytes.
    Bytes,
    /// Floating-point computation, measured in FLOPs.
    Flops,
}

impl fmt::Display for WorkUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkUnit::Bytes => f.write_str("bytes"),
            WorkUnit::Flops => f.write_str("flops"),
        }
    }
}

/// A work volume with its dimension: either a data volume or a FLOP count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Work {
    /// Data movement volume.
    Bytes(Bytes),
    /// Floating-point operation count.
    Flops(Flops),
}

impl Work {
    /// The dimension of this work volume.
    pub fn unit(self) -> WorkUnit {
        match self {
            Work::Bytes(_) => WorkUnit::Bytes,
            Work::Flops(_) => WorkUnit::Flops,
        }
    }

    /// Raw magnitude in base units (bytes or flops).
    pub fn magnitude(self) -> f64 {
        match self {
            Work::Bytes(b) => b.get(),
            Work::Flops(f) => f.get(),
        }
    }

    /// Time to retire this work at `rate`, or `None` on unit mismatch.
    pub fn time_at(self, rate: Rate) -> Option<Seconds> {
        match (self, rate) {
            (Work::Bytes(b), Rate::BytesPerSec(r)) => Some(b / r),
            (Work::Flops(w), Rate::FlopsPerSec(r)) => Some(w / r),
            _ => None,
        }
    }

    /// Adds two work volumes of the same dimension; `None` on mismatch.
    pub fn checked_add(self, other: Work) -> Option<Work> {
        match (self, other) {
            (Work::Bytes(a), Work::Bytes(b)) => Some(Work::Bytes(a + b)),
            (Work::Flops(a), Work::Flops(b)) => Some(Work::Flops(a + b)),
            _ => None,
        }
    }

    /// Scales the volume by a dimensionless factor.
    pub fn scale(self, factor: f64) -> Work {
        match self {
            Work::Bytes(b) => Work::Bytes(b * factor),
            Work::Flops(f) => Work::Flops(f * factor),
        }
    }
}

impl fmt::Display for Work {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Work::Bytes(b) => b.fmt(f),
            Work::Flops(w) => w.fmt(f),
        }
    }
}

/// A peak rate with its dimension: bandwidth or compute throughput.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Rate {
    /// A bandwidth.
    BytesPerSec(BytesPerSec),
    /// A compute rate.
    FlopsPerSec(FlopsPerSec),
}

impl Rate {
    /// The dimension of this rate.
    pub fn unit(self) -> WorkUnit {
        match self {
            Rate::BytesPerSec(_) => WorkUnit::Bytes,
            Rate::FlopsPerSec(_) => WorkUnit::Flops,
        }
    }

    /// Raw magnitude in base units per second.
    pub fn magnitude(self) -> f64 {
        match self {
            Rate::BytesPerSec(r) => r.get(),
            Rate::FlopsPerSec(r) => r.get(),
        }
    }

    /// Scales the rate by a dimensionless factor.
    pub fn scale(self, factor: f64) -> Rate {
        match self {
            Rate::BytesPerSec(r) => Rate::BytesPerSec(r * factor),
            Rate::FlopsPerSec(r) => Rate::FlopsPerSec(r * factor),
        }
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rate::BytesPerSec(r) => r.fmt(f),
            Rate::FlopsPerSec(r) => r.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_use_decimal_prefixes() {
        assert_eq!(Bytes::gb(1.0).get(), 1e9);
        assert_eq!(Bytes::tb(5.0).get(), 5e12);
        assert_eq!(Flops::pflops(1164.0).get(), 1.164e18);
        assert_eq!(BytesPerSec::tbps(5.6).get(), 5.6e12);
        assert_eq!(Seconds::minutes(10.0).get(), 600.0);
    }

    #[test]
    fn division_yields_time() {
        // LCLS good day: 1 TB per stream at 1 GB/s is ~1000 s.
        let t = Bytes::tb(1.0) / BytesPerSec::gbps(1.0);
        assert!((t.get() - 1000.0).abs() < 1e-9);
        // BGW 64-node node time: 4390 PFLOPs over 64 nodes at 38.8 TFLOP/s.
        let per_node = Flops::pflops(1164.0 + 3226.0) / 64.0;
        let t = per_node / FlopsPerSec::tflops(38.8);
        assert!((t.get() - 1768.0).abs() < 1.0, "got {}", t.get());
    }

    #[test]
    fn work_time_at_checks_units() {
        let w = Work::Bytes(Bytes::gb(80.0));
        let ok = w.time_at(Rate::BytesPerSec(BytesPerSec::gbps(100.0)));
        assert!((ok.unwrap().get() - 0.8).abs() < 1e-12);
        let bad = w.time_at(Rate::FlopsPerSec(FlopsPerSec::tflops(38.8)));
        assert!(bad.is_none());
    }

    #[test]
    fn work_checked_add_rejects_mixed_units() {
        let a = Work::Bytes(Bytes::gb(1.0));
        let b = Work::Flops(Flops::gflops(1.0));
        assert!(a.checked_add(b).is_none());
        let c = a.checked_add(Work::Bytes(Bytes::gb(2.0))).unwrap();
        assert!((c.magnitude() - 3e9).abs() < 1e-3);
    }

    #[test]
    fn display_uses_engineering_prefixes() {
        assert_eq!(BytesPerSec::tbps(5.6).to_string(), "5.6 TB/s");
        assert_eq!(FlopsPerSec::tflops(38.8).to_string(), "38.8 TFLOP/s");
        assert_eq!(Bytes::gb(70.0).to_string(), "70 GB");
        assert_eq!(Bytes::ZERO.to_string(), "0 B");
        assert_eq!(Seconds::secs(228.0).to_string(), "228 s");
    }

    #[test]
    fn arithmetic_ops() {
        let a = Bytes::gb(1.0) + Bytes::gb(2.0);
        assert_eq!(a, Bytes::gb(3.0));
        let b = a - Bytes::gb(1.0);
        assert_eq!(b, Bytes::gb(2.0));
        let c: Bytes = vec![Bytes::gb(1.0); 5].into_iter().sum();
        assert_eq!(c, Bytes::gb(5.0));
        assert_eq!(2.0 * Seconds::secs(3.0), Seconds::secs(6.0));
        assert!((Bytes::gb(4.0) / Bytes::gb(2.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn validity() {
        assert!(Bytes::gb(1.0).is_valid());
        assert!(!Bytes(-1.0).is_valid());
        assert!(!Bytes(f64::NAN).is_valid());
        assert!(!Seconds(f64::INFINITY).is_valid());
    }

    #[test]
    fn rate_scale() {
        // The LCLS bad-day contention: 5x decrease.
        let good = Rate::BytesPerSec(BytesPerSec::gbps(1.0));
        let bad = good.scale(0.2);
        assert!((bad.magnitude() - 0.2e9).abs() < 1e-3);
        assert_eq!(bad.unit(), WorkUnit::Bytes);
    }
}
