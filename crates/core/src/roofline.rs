//! The Workflow Roofline Model: ceilings, walls, the attainable region,
//! and the empirical workflow dot (Eq. 1 and Fig. 1 of the paper).
//!
//! A workflow's throughput in tasks/second (TPS) is bounded by
//!
//! ```text
//! TPS <= min { x,                                  (parallelism)
//!              x * kappa / t_r   for node resources r,   (diagonals)
//!              n_total / T_s     for system resources s } (horizontals)
//! ```
//!
//! where `x` is the number of parallel tasks, `kappa = n_total /
//! n_parallel`, `t_r` is the time one node needs for its share of the
//! whole workflow's volume on resource `r` at peak rate, and `T_s` is the
//! time the shared resource `s` needs for the whole workflow's volume at
//! aggregate peak. The vertical *system parallelism wall* caps `x` at
//! `floor(total_nodes / nodes_per_task)`.
//!
//! Unlike the classic Roofline, the ceilings are *workflow-specific*: they
//! move when the workflow's volumes change, which is exactly what makes
//! the single figure interpretable (Section III-D).

use crate::charz::WorkflowCharacterization;
use crate::error::CoreError;
use crate::machine::Machine;
use crate::resource::ResourceId;
use crate::units::{Seconds, TasksPerSec};
use serde::{Deserialize, Serialize};

/// Whether a ceiling is node-local (diagonal) or system-wide (horizontal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CeilingKind {
    /// Node-local resource: capacity grows with parallel tasks.
    Node,
    /// Shared system resource: capacity is fixed (or fixed by the
    /// workflow's allocation).
    System,
}

/// One performance ceiling in the model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ceiling {
    /// The machine resource this ceiling comes from.
    pub resource: ResourceId,
    /// Plot label, e.g. `"GPU FLOPS = perform 69 PFLOPS @ 38.8 TFLOP/s"`.
    pub label: String,
    /// Diagonal (node) or horizontal (system).
    pub kind: CeilingKind,
    /// Characteristic time: `t_r` for node ceilings (per-slot node time),
    /// `T_s` for system ceilings (shared-resource drain time).
    pub time: Seconds,
    /// Throughput bound at `x = 1` parallel task. Node ceilings scale
    /// linearly with `x`; system ceilings are constant at
    /// `n_total / T_s` regardless of `x`.
    pub tps_at_one: TasksPerSec,
}

impl Ceiling {
    /// The throughput bound this ceiling imposes at `x` parallel tasks.
    pub fn tps_at(&self, x: f64) -> TasksPerSec {
        match self.kind {
            CeilingKind::Node => TasksPerSec(self.tps_at_one.get() * x),
            CeilingKind::System => self.tps_at_one,
        }
    }
}

/// An empirical point on the roofline plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Legend label ("Good days", "RCI", ...).
    pub label: String,
    /// Parallel tasks (x coordinate).
    pub x: f64,
    /// Achieved throughput (y coordinate).
    pub tps: TasksPerSec,
}

/// The assembled Workflow Roofline Model for one workflow on one machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflineModel {
    /// The machine the ceilings were derived from.
    pub machine_name: String,
    /// The workflow characterization the model was built from.
    pub workflow: WorkflowCharacterization,
    /// All ceilings, node and system.
    pub ceilings: Vec<Ceiling>,
    /// The system parallelism wall: max parallel tasks.
    pub parallelism_wall: u64,
    /// The empirical dot, when the workflow has a measured makespan.
    pub dot: Option<RooflinePoint>,
}

impl RooflineModel {
    /// Builds the model, failing when the workflow references a resource
    /// the machine does not define or a volume's unit mismatches the
    /// machine peak.
    pub fn build(
        machine: &Machine,
        workflow: &WorkflowCharacterization,
    ) -> Result<Self, CoreError> {
        Self::build_inner(machine, workflow, true)
    }

    /// Like [`RooflineModel::build`] but silently skips volumes whose
    /// resource the machine does not define (useful for projecting one
    /// characterization onto several machines).
    pub fn build_lenient(
        machine: &Machine,
        workflow: &WorkflowCharacterization,
    ) -> Result<Self, CoreError> {
        Self::build_inner(machine, workflow, false)
    }

    fn build_inner(
        machine: &Machine,
        workflow: &WorkflowCharacterization,
        strict: bool,
    ) -> Result<Self, CoreError> {
        machine.validate()?;
        workflow.validate()?;

        let kappa = workflow.kappa();
        let n_total = workflow.total_tasks;
        let mut ceilings = Vec::new();

        for (id, work) in &workflow.node_volumes {
            let Some(res) = machine.node_resource(id.as_str()) else {
                if strict {
                    return Err(CoreError::UnknownResource(id.to_string()));
                }
                continue;
            };
            if work.magnitude() == 0.0 {
                continue; // no volume => no ceiling
            }
            let time = work
                .time_at(res.peak_per_node)
                .ok_or_else(|| CoreError::UnitMismatch {
                    resource: id.to_string(),
                    volume_unit: work.unit().to_string(),
                    peak_unit: res.peak_per_node.unit().to_string(),
                })?;
            ceilings.push(Ceiling {
                resource: id.clone(),
                label: format!("{} = {} @ {}", res.label, work, res.peak_per_node),
                kind: CeilingKind::Node,
                time,
                tps_at_one: TasksPerSec(kappa / time.get()),
            });
        }

        for (id, bytes) in &workflow.system_volumes {
            let Some(res) = machine.system_resource(id.as_str()) else {
                if strict {
                    return Err(CoreError::UnknownResource(id.to_string()));
                }
                continue;
            };
            if bytes.get() == 0.0 {
                continue;
            }
            let aggregate = res.aggregate_for(workflow.nodes_in_use());
            let time = *bytes / aggregate;
            ceilings.push(Ceiling {
                resource: id.clone(),
                label: format!("{} = {} @ {}", res.label, bytes, aggregate),
                kind: CeilingKind::System,
                time,
                tps_at_one: TasksPerSec(n_total / time.get()),
            });
        }

        let parallelism_wall = machine.parallelism_wall(workflow.nodes_per_task)?;

        let dot = match workflow.makespan {
            Some(_) => Some(RooflinePoint {
                label: workflow.name.clone(),
                x: workflow.parallel_tasks,
                tps: workflow.throughput()?,
            }),
            None => None,
        };

        Ok(RooflineModel {
            machine_name: machine.name.clone(),
            workflow: workflow.clone(),
            ceilings,
            parallelism_wall,
            dot,
        })
    }

    /// The attainable throughput envelope at `x` parallel tasks: the
    /// minimum over every ceiling, or `None` beyond the parallelism wall
    /// (the grey unattainable region of Fig. 1).
    pub fn envelope_at(&self, x: f64) -> Option<TasksPerSec> {
        if !(x.is_finite() && x >= 0.0) || x > self.parallelism_wall as f64 {
            return None;
        }
        let min = self
            .ceilings
            .iter()
            .map(|c| c.tps_at(x).get())
            .fold(f64::INFINITY, f64::min);
        Some(TasksPerSec(min))
    }

    /// The ceiling that binds (is lowest) at `x` parallel tasks.
    pub fn binding_ceiling_at(&self, x: f64) -> Option<&Ceiling> {
        self.ceilings.iter().min_by(|a, b| {
            a.tps_at(x)
                .get()
                .partial_cmp(&b.tps_at(x).get())
                .expect("ceiling TPS is finite")
        })
    }

    /// The ceiling binding at the workflow's own parallelism.
    pub fn binding_ceiling(&self) -> Option<&Ceiling> {
        self.binding_ceiling_at(self.workflow.parallel_tasks)
    }

    /// `achieved / attainable` at the dot: 1.0 means the workflow runs at
    /// the envelope. BGW at 64 nodes reaches ~42% of its node ceiling.
    pub fn efficiency(&self) -> Option<f64> {
        let dot = self.dot.as_ref()?;
        let env = self.envelope_at(dot.x)?;
        if env.get() > 0.0 && env.get().is_finite() {
            Some(dot.tps.get() / env.get())
        } else {
            None
        }
    }

    /// True when the point `(x, tps)` lies inside the attainable region.
    pub fn attainable(&self, x: f64, tps: TasksPerSec) -> bool {
        match self.envelope_at(x) {
            Some(env) => tps.get() <= env.get() * (1.0 + 1e-12),
            None => false,
        }
    }

    /// The theoretical minimum makespan at the workflow's parallelism:
    /// `n_total / envelope(n_parallel)`.
    pub fn makespan_lower_bound(&self) -> Option<Seconds> {
        let env = self.envelope_at(self.workflow.parallel_tasks)?;
        if env.get() > 0.0 && env.get().is_finite() {
            Some(Seconds(self.workflow.total_tasks / env.get()))
        } else {
            None
        }
    }

    /// Throughput of the target-makespan isoline at `x` parallel tasks:
    /// the diagonal `y = x * kappa / M_target` of Fig. 2a. A dot above the
    /// isoline (at its own x) meets the deadline.
    pub fn makespan_isoline_at(&self, target: Seconds, x: f64) -> TasksPerSec {
        TasksPerSec(x * self.workflow.kappa() / target.get())
    }

    /// Node ceilings only, sorted from most to least binding at the
    /// workflow's x.
    pub fn node_ceilings(&self) -> Vec<&Ceiling> {
        self.sorted(CeilingKind::Node)
    }

    /// System ceilings only, sorted from most to least binding.
    pub fn system_ceilings(&self) -> Vec<&Ceiling> {
        self.sorted(CeilingKind::System)
    }

    fn sorted(&self, kind: CeilingKind) -> Vec<&Ceiling> {
        let x = self.workflow.parallel_tasks;
        let mut v: Vec<&Ceiling> = self.ceilings.iter().filter(|c| c.kind == kind).collect();
        v.sort_by(|a, b| {
            a.tps_at(x)
                .get()
                .partial_cmp(&b.tps_at(x).get())
                .expect("finite")
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charz::TargetSpec;
    use crate::machines;
    use crate::resource::ids;
    use crate::units::{Bytes, Flops, Work};

    /// LCLS on Cori: 6 tasks, 5 parallel, 1 TB external input per analysis
    /// task, 32 GB of CPU bytes per node.
    fn lcls_on_cori(makespan_min: f64) -> WorkflowCharacterization {
        WorkflowCharacterization::builder("LCLS")
            .total_tasks(6.0)
            .parallel_tasks(5.0)
            .nodes_per_task(32)
            .makespan(Seconds::minutes(makespan_min))
            .node_volume(ids::DRAM, Work::Bytes(Bytes::gb(32.0)))
            .system_volume(ids::EXTERNAL, Bytes::tb(5.0))
            .system_volume(ids::BURST_BUFFER, Bytes::tb(5.0))
            .targets(TargetSpec::new(
                Seconds::secs(600.0),
                TasksPerSec(6.0 / 600.0),
            ))
            .build()
            .unwrap()
    }

    /// BGW on PM-GPU at `nodes` nodes/task with measured makespan.
    fn bgw(nodes: u64, makespan: f64) -> WorkflowCharacterization {
        let total_flops = Flops::pflops(1164.0 + 3226.0);
        let nic_total = Bytes::gb(2676.0 * 64.0); // constant in strong scaling
        WorkflowCharacterization::builder("BerkeleyGW")
            .total_tasks(2.0)
            .parallel_tasks(1.0)
            .nodes_per_task(nodes)
            .makespan(Seconds::secs(makespan))
            .node_volume(ids::COMPUTE, Work::Flops(total_flops / nodes as f64))
            .system_volume(ids::FILE_SYSTEM, Bytes::gb(70.0))
            .system_volume(ids::NETWORK, nic_total)
            .build()
            .unwrap()
    }

    #[test]
    fn lcls_good_day_sits_on_external_ceiling() {
        let m = machines::cori_haswell();
        let model = RooflineModel::build(&m, &lcls_on_cori(17.0)).unwrap();
        let ext = model
            .ceilings
            .iter()
            .find(|c| c.resource.as_str() == ids::EXTERNAL)
            .unwrap();
        // T_ext = 5 TB / 5 GB/s = 1000 s; ceiling = 6 / 1000 s.
        assert!((ext.time.get() - 1000.0).abs() < 1e-9);
        assert!((ext.tps_at_one.get() - 0.006).abs() < 1e-12);
        // Dot: 6 tasks / 1020 s -- within 2% of the ceiling.
        let dot = model.dot.as_ref().unwrap();
        assert!((dot.tps.get() - 6.0 / 1020.0).abs() < 1e-12);
        let binding = model.binding_ceiling().unwrap();
        assert_eq!(binding.resource.as_str(), ids::EXTERNAL);
        assert!(model.efficiency().unwrap() > 0.97);
    }

    #[test]
    fn lcls_bad_day_is_5x_lower() {
        let m = machines::cori_haswell()
            .with_scaled_resource(ids::EXTERNAL, 0.2)
            .unwrap();
        let model = RooflineModel::build(&m, &lcls_on_cori(85.0)).unwrap();
        let ext = model.binding_ceiling().unwrap();
        assert_eq!(ext.resource.as_str(), ids::EXTERNAL);
        assert!((ext.tps_at_one.get() - 0.0012).abs() < 1e-12);
        // Even the good-day ceiling misses the 2020 target of 6/600 s.
        let good = machines::cori_haswell();
        let good_model = RooflineModel::build(&good, &lcls_on_cori(17.0)).unwrap();
        let target = good_model.workflow.targets.throughput.unwrap();
        let env = good_model.envelope_at(5.0).unwrap();
        assert!(env.get() < target.get());
    }

    #[test]
    fn bgw_64_matches_paper_numbers() {
        let m = machines::perlmutter_gpu();
        let model = RooflineModel::build(&m, &bgw(64, 4184.86)).unwrap();
        assert_eq!(model.parallelism_wall, 28);

        let compute = model
            .ceilings
            .iter()
            .find(|c| c.resource.as_str() == ids::COMPUTE)
            .unwrap();
        // (1164+3226) PF / 64 / 38.8 TF = ~1768 s (paper rounds to 1800 s).
        assert!((compute.time.get() - 1768.0).abs() < 1.0);
        assert_eq!(compute.kind, CeilingKind::Node);

        // 42% of node peak.
        let eff = model.efficiency().unwrap();
        assert!((eff - 0.42).abs() < 0.01, "efficiency {eff}");

        // Binding ceiling at x=1 is compute, not network or FS.
        assert_eq!(
            model.binding_ceiling().unwrap().resource.as_str(),
            ids::COMPUTE
        );

        // Network ceiling: 171264 GB / (64 x 100 GB/s) = ~26.8 s.
        let net = model
            .ceilings
            .iter()
            .find(|c| c.resource.as_str() == ids::NETWORK)
            .unwrap();
        assert!((net.time.get() - 26.76).abs() < 0.01);
        assert_eq!(net.kind, CeilingKind::System);
    }

    #[test]
    fn bgw_1024_wall_moves_and_network_ceiling_rises() {
        let m = machines::perlmutter_gpu();
        let m64 = RooflineModel::build(&m, &bgw(64, 4184.86)).unwrap();
        let m1024 = RooflineModel::build(&m, &bgw(1024, 404.74)).unwrap();
        assert_eq!(m1024.parallelism_wall, 1);
        // Network aggregate grows 16x, so the ceiling rises 16x.
        let n64 = m64.system_ceilings()[0];
        let net64 = m64
            .ceilings
            .iter()
            .find(|c| c.resource.as_str() == ids::NETWORK)
            .unwrap();
        let net1024 = m1024
            .ceilings
            .iter()
            .find(|c| c.resource.as_str() == ids::NETWORK)
            .unwrap();
        assert!((net1024.tps_at_one.get() / net64.tps_at_one.get() - 16.0).abs() < 1e-9);
        assert_eq!(n64.resource.as_str(), ids::NETWORK); // NIC below FS
                                                         // ~30% of node peak at 1024 nodes (27.3% exactly).
        let eff = m1024.efficiency().unwrap();
        assert!((eff - 0.273).abs() < 0.01, "efficiency {eff}");
    }

    #[test]
    fn envelope_and_attainability() {
        let m = machines::perlmutter_gpu();
        let model = RooflineModel::build(&m, &bgw(64, 4184.86)).unwrap();
        // Beyond the wall: unattainable.
        assert!(model.envelope_at(29.0).is_none());
        assert!(!model.attainable(29.0, TasksPerSec(1e-9)));
        // At the wall the envelope exists.
        let env = model.envelope_at(28.0).unwrap();
        assert!(env.get() > 0.0);
        // The dot is attainable; a point above the envelope is not.
        let dot = model.dot.clone().unwrap();
        assert!(model.attainable(dot.x, dot.tps));
        assert!(!model.attainable(dot.x, TasksPerSec(env.get() * 2.0)));
        // Negative or non-finite x is not attainable.
        assert!(model.envelope_at(-1.0).is_none());
        assert!(model.envelope_at(f64::NAN).is_none());
    }

    #[test]
    fn node_ceilings_scale_with_x_system_do_not() {
        let m = machines::perlmutter_gpu();
        let model = RooflineModel::build(&m, &bgw(64, 4184.86)).unwrap();
        for c in &model.ceilings {
            let y1 = c.tps_at(1.0).get();
            let y4 = c.tps_at(4.0).get();
            match c.kind {
                CeilingKind::Node => assert!((y4 / y1 - 4.0).abs() < 1e-12),
                CeilingKind::System => assert!((y4 - y1).abs() < 1e-18),
            }
        }
    }

    #[test]
    fn strict_build_rejects_unknown_resources_lenient_skips() {
        let m = machines::perlmutter_gpu();
        let wf = WorkflowCharacterization::builder("w")
            .node_volume("unobtainium", Work::Bytes(Bytes::gb(1.0)))
            .build()
            .unwrap();
        assert!(matches!(
            RooflineModel::build(&m, &wf),
            Err(CoreError::UnknownResource(_))
        ));
        let lenient = RooflineModel::build_lenient(&m, &wf).unwrap();
        assert!(lenient.ceilings.is_empty());
    }

    #[test]
    fn unit_mismatch_is_detected() {
        let m = machines::perlmutter_gpu();
        let wf = WorkflowCharacterization::builder("w")
            .node_volume(ids::COMPUTE, Work::Bytes(Bytes::gb(1.0)))
            .build()
            .unwrap();
        assert!(matches!(
            RooflineModel::build(&m, &wf),
            Err(CoreError::UnitMismatch { .. })
        ));
    }

    #[test]
    fn zero_volumes_produce_no_ceiling() {
        let m = machines::perlmutter_gpu();
        let wf = WorkflowCharacterization::builder("w")
            .node_volume(ids::COMPUTE, Work::Flops(Flops::ZERO))
            .system_volume(ids::FILE_SYSTEM, Bytes::ZERO)
            .build()
            .unwrap();
        let model = RooflineModel::build(&m, &wf).unwrap();
        assert!(model.ceilings.is_empty());
        // Envelope is unbounded but still defined inside the wall.
        assert_eq!(model.envelope_at(1.0).unwrap().get(), f64::INFINITY);
        assert!(model.binding_ceiling().is_none());
        assert!(model.makespan_lower_bound().is_none());
    }

    #[test]
    fn makespan_isoline_passes_through_own_dot() {
        // A dot always lies on the isoline of its own measured makespan.
        let m = machines::cori_haswell();
        let wf = lcls_on_cori(17.0);
        let model = RooflineModel::build(&m, &wf).unwrap();
        let dot = model.dot.as_ref().unwrap();
        let iso = model.makespan_isoline_at(Seconds::minutes(17.0), dot.x);
        assert!((iso.get() - dot.tps.get()).abs() < 1e-12);
    }

    #[test]
    fn makespan_lower_bound_is_consistent() {
        let m = machines::perlmutter_gpu();
        let model = RooflineModel::build(&m, &bgw(64, 4184.86)).unwrap();
        let lb = model.makespan_lower_bound().unwrap();
        // Bound ~1768 s, achieved 4184.86 s.
        assert!(lb.get() < 4184.86);
        assert!((lb.get() - 1768.0).abs() < 1.0);
    }
}
