//! Cross-machine projection: the same workflow characterization placed
//! on several machines, plus inverse questions for system architects —
//! *what peak would resource X need for this workflow to meet its
//! target?* (the paper's conclusion: for an LCLS-like workflow, network
//! and storage QOS matter, a faster compute unit does not).

use crate::analysis::bounds::{classify, BoundReport};
use crate::charz::WorkflowCharacterization;
use crate::error::CoreError;
use crate::machine::Machine;
use crate::roofline::{CeilingKind, RooflineModel};
use crate::units::{Seconds, TasksPerSec};
use serde::{Deserialize, Serialize};

/// The projection of one workflow onto one machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineProjection {
    /// Machine name.
    pub machine: String,
    /// Parallelism wall for this workflow's nodes-per-task.
    pub parallelism_wall: u64,
    /// Attainable throughput at the workflow's own parallelism.
    pub envelope: TasksPerSec,
    /// Best-case makespan (`total_tasks / envelope`).
    pub makespan_lower_bound: Option<Seconds>,
    /// Binding resource id at the workflow's x.
    pub binding_resource: Option<String>,
    /// Bound classification.
    pub bound: BoundReport,
    /// Whether the throughput target (if declared) is attainable at all
    /// on this machine at this parallelism.
    pub target_attainable: Option<bool>,
}

/// Projects `workflow` onto each machine (leniently: volumes for
/// resources a machine lacks are ignored, so one characterization can be
/// compared across heterogeneous systems).
pub fn across_machines(
    workflow: &WorkflowCharacterization,
    machines: &[Machine],
) -> Result<Vec<MachineProjection>, CoreError> {
    let mut out = Vec::with_capacity(machines.len());
    for machine in machines {
        let model = RooflineModel::build_lenient(machine, workflow)?;
        let x = workflow.parallel_tasks;
        let envelope = model.envelope_at(x).unwrap_or(TasksPerSec(0.0));
        let target_attainable = workflow
            .targets
            .throughput
            .map(|t| envelope.get().is_finite() && envelope.get() >= t.get());
        out.push(MachineProjection {
            machine: machine.name.clone(),
            parallelism_wall: model.parallelism_wall,
            envelope,
            makespan_lower_bound: model.makespan_lower_bound(),
            binding_resource: model.binding_ceiling().map(|c| c.resource.to_string()),
            bound: classify(&model),
            target_attainable,
        });
    }
    Ok(out)
}

/// The peak (in the machine resource's native units per second) that
/// `resource` would need for the workflow's throughput target to become
/// attainable at its own parallelism, holding every other ceiling fixed.
///
/// Returns:
/// * `Ok(None)` when the target is already attainable or no throughput
///   target is declared;
/// * `Ok(Some(peak))` when raising `resource`'s peak to `peak` makes the
///   target attainable;
/// * `Err(CoreError::UnknownResource)` when the machine lacks the
///   resource;
/// * `Ok(Some(f64::INFINITY))` when no finite peak suffices (another
///   ceiling or the wall blocks the target) — the paper's "a faster
///   compute unit makes no difference" case.
pub fn required_peak(
    machine: &Machine,
    workflow: &WorkflowCharacterization,
    resource: &str,
) -> Result<Option<f64>, CoreError> {
    let Some(target) = workflow.targets.throughput else {
        return Ok(None);
    };
    let model = RooflineModel::build_lenient(machine, workflow)?;
    let x = workflow.parallel_tasks;
    if x > model.parallelism_wall as f64 {
        return Ok(Some(f64::INFINITY));
    }
    let envelope = model.envelope_at(x).unwrap_or(TasksPerSec(0.0));
    if envelope.get() >= target.get() {
        return Ok(None); // already attainable
    }

    // Find this resource's ceiling; if the workflow moves no volume on
    // it, scaling it cannot help.
    let Some(ceiling) = model
        .ceilings
        .iter()
        .find(|c| c.resource.as_str() == resource)
    else {
        // Distinguish "machine lacks it" from "workflow doesn't use it".
        if machine.node_resource(resource).is_none() && machine.system_resource(resource).is_none()
        {
            return Err(CoreError::UnknownResource(resource.to_owned()));
        }
        return Ok(Some(f64::INFINITY));
    };

    // Every *other* ceiling must already clear the target, else no
    // finite scaling of this one suffices.
    let other_min = model
        .ceilings
        .iter()
        .filter(|c| c.resource.as_str() != resource)
        .map(|c| c.tps_at(x).get())
        .fold(f64::INFINITY, f64::min);
    if other_min < target.get() {
        return Ok(Some(f64::INFINITY));
    }

    // The ceiling scales linearly with the resource peak.
    let current = ceiling.tps_at(x).get();
    let scale = target.get() / current;
    let current_peak = match ceiling.kind {
        CeilingKind::Node => machine
            .node_resource(resource)
            .expect("ceiling implies resource")
            .peak_per_node
            .magnitude(),
        CeilingKind::System => machine
            .system_resource(resource)
            .expect("ceiling implies resource")
            .peak
            .get(),
    };
    Ok(Some(current_peak * scale))
}

/// Renders a plain-text comparison table.
pub fn render_table(projections: &[MachineProjection]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} {:>6} {:>14} {:>16} {:>10} {:>8}\n",
        "machine", "wall", "envelope", "min makespan", "binding", "target"
    ));
    for p in projections {
        out.push_str(&format!(
            "{:<18} {:>6} {:>14.4e} {:>16} {:>10} {:>8}\n",
            p.machine,
            p.parallelism_wall,
            p.envelope.get(),
            p.makespan_lower_bound
                .map_or_else(|| "-".into(), |m| format!("{:.1} s", m.get())),
            p.binding_resource.as_deref().unwrap_or("-"),
            match p.target_attainable {
                Some(true) => "yes",
                Some(false) => "NO",
                None => "-",
            }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::bounds::BoundKind;
    use crate::machines;
    use crate::resource::ids;
    use crate::units::{Bytes, Work};

    /// LCLS-like: 5 TB external, modest node traffic, 2020 target.
    fn lcls_like() -> WorkflowCharacterization {
        WorkflowCharacterization::builder("LCLS")
            .total_tasks(6.0)
            .parallel_tasks(5.0)
            .nodes_per_task(8)
            .makespan(Seconds::secs(1020.0))
            .node_volume(ids::DRAM, Work::Bytes(Bytes::gb(32.0)))
            .system_volume(ids::EXTERNAL, Bytes::tb(5.0))
            .target_throughput(TasksPerSec(6.0 / 600.0))
            .build()
            .unwrap()
    }

    #[test]
    fn projects_across_all_presets() {
        let wf = lcls_like();
        let projections = across_machines(&wf, &machines::all()).unwrap();
        assert_eq!(projections.len(), 3);
        // Every machine is external-bound for this workflow.
        for p in &projections {
            assert_eq!(p.binding_resource.as_deref(), Some(ids::EXTERNAL));
            assert!(matches!(p.bound.bound, BoundKind::System { .. }));
        }
        // PM's 25 GB/s DTN clears the target; Cori's 5 GB/s does not.
        let pm = projections
            .iter()
            .find(|p| p.machine.contains("CPU"))
            .unwrap();
        let cori = projections
            .iter()
            .find(|p| p.machine.contains("Cori"))
            .unwrap();
        assert_eq!(pm.target_attainable, Some(true));
        assert_eq!(cori.target_attainable, Some(false));
        // Table renders every machine row.
        let table = render_table(&projections);
        assert!(table.contains("Cori Haswell"));
        assert!(table.contains("NO"));
        assert!(table.contains("yes"));
    }

    #[test]
    fn required_external_peak_on_cori() {
        // Target 0.01 tasks/s; external ceiling is 6/(5TB/peak): the
        // target needs peak >= 0.01 * 5e12 / 6 = 8.33 GB/s.
        let wf = lcls_like();
        let cori = machines::cori_haswell();
        let needed = required_peak(&cori, &wf, ids::EXTERNAL).unwrap().unwrap();
        assert!((needed - 0.01 * 5e12 / 6.0).abs() < 1e-3, "needed {needed}");
        assert!(needed.is_finite());
        // And with that peak installed, the target becomes attainable.
        let upgraded = cori
            .with_scaled_resource(ids::EXTERNAL, needed / 5e9)
            .unwrap();
        let p = across_machines(&wf, &[upgraded]).unwrap();
        assert_eq!(p[0].target_attainable, Some(true));
    }

    #[test]
    fn faster_compute_never_suffices_for_external_bound() {
        // The paper's conclusion #1, as algebra: no finite compute peak
        // makes the LCLS target attainable on Cori.
        let mut wf = lcls_like();
        wf.node_volumes.insert(
            ids::COMPUTE.into(),
            Work::Flops(crate::units::Flops::pflops(1.0)),
        );
        let cori = machines::cori_haswell();
        let needed = required_peak(&cori, &wf, ids::COMPUTE).unwrap().unwrap();
        assert!(needed.is_infinite());
    }

    #[test]
    fn already_attainable_returns_none() {
        let wf = lcls_like();
        let pm = machines::perlmutter_cpu();
        assert_eq!(required_peak(&pm, &wf, ids::EXTERNAL).unwrap(), None);
        // No target declared -> None as well.
        let mut untargeted = wf.clone();
        untargeted.targets.throughput = None;
        assert_eq!(
            required_peak(&machines::cori_haswell(), &untargeted, ids::EXTERNAL).unwrap(),
            None
        );
    }

    #[test]
    fn unknown_and_unused_resources() {
        let wf = lcls_like();
        let cori = machines::cori_haswell();
        assert!(matches!(
            required_peak(&cori, &wf, "quantum-link"),
            Err(CoreError::UnknownResource(_))
        ));
        // Cori defines compute but this workflow moves no FLOPs: scaling
        // it cannot help.
        let needed = required_peak(&cori, &wf, ids::COMPUTE).unwrap().unwrap();
        assert!(needed.is_infinite());
    }

    #[test]
    fn beyond_wall_is_unattainable_everywhere() {
        let wf = WorkflowCharacterization::builder("wide")
            .total_tasks(100.0)
            .parallel_tasks(100.0)
            .nodes_per_task(64)
            .system_volume(ids::EXTERNAL, Bytes::tb(1.0))
            .target_throughput(TasksPerSec(1.0))
            .build()
            .unwrap();
        // 100 parallel 64-node tasks exceed Cori's wall (2388/64 = 37).
        let needed = required_peak(&machines::cori_haswell(), &wf, ids::EXTERNAL)
            .unwrap()
            .unwrap();
        assert!(needed.is_infinite());
        let p = across_machines(&wf, &[machines::cori_haswell()]).unwrap();
        assert_eq!(p[0].envelope.get(), 0.0);
    }
}
