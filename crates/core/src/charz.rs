//! Workflow characterization: the lightweight metrics Section III-B of
//! the paper feeds into the Workflow Roofline Model.
//!
//! A [`WorkflowCharacterization`] records, for one workflow execution
//! (or plan):
//!
//! * **task structure** — total tasks, concurrently-runnable tasks, and
//!   nodes per task (from the workflow description, e.g. sbatch/WDL);
//! * **node volumes** — per-node FLOPs and bytes *one node processes over
//!   the whole workflow* (a parallel "slot" executes
//!   `total_tasks / parallel_tasks` tasks serially, and their per-node
//!   volumes add up);
//! * **system volumes** — total bytes the *whole workflow* moves through
//!   each shared resource (file system, NICs, external links);
//! * the measured **makespan** (queue wait excluded) and optional
//!   makespan/throughput **targets**.
//!
//! The throughput unit ("task") is whatever the workflow counts:
//! applications for LCLS/BGW, epochs for the CosmoFlow throughput
//! benchmark, tuning campaigns for GPTune. Counts are `f64` so that
//! fractional units (average epochs per instance) are expressible.

use crate::error::CoreError;
use crate::resource::ResourceId;
use crate::units::{Bytes, Seconds, TasksPerSec, Work};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Optional performance targets (Fig. 2a): a deadline for one workflow
/// instance and/or a task-rate target.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TargetSpec {
    /// Target makespan for the workflow (e.g. LCLS's 10 minutes in 2020).
    pub makespan: Option<Seconds>,
    /// Target throughput (e.g. 6 tasks / 600 s).
    pub throughput: Option<TasksPerSec>,
}

impl TargetSpec {
    /// No targets.
    pub const NONE: TargetSpec = TargetSpec {
        makespan: None,
        throughput: None,
    };

    /// Both a makespan and a throughput target.
    pub fn new(makespan: Seconds, throughput: TasksPerSec) -> Self {
        Self {
            makespan: Some(makespan),
            throughput: Some(throughput),
        }
    }
}

/// The measured/estimated characterization of one workflow execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowCharacterization {
    /// Workflow name (used in plot titles and reports).
    pub name: String,
    /// Total number of tasks the workflow retires.
    pub total_tasks: f64,
    /// Number of tasks that can execute concurrently (the x coordinate).
    pub parallel_tasks: f64,
    /// Nodes each task occupies (defines the parallelism wall).
    pub nodes_per_task: u64,
    /// Measured end-to-end wall-clock time, when available.
    pub makespan: Option<Seconds>,
    /// Per-node work over the whole workflow, keyed by node resource.
    pub node_volumes: BTreeMap<ResourceId, Work>,
    /// Total workflow data volume through each shared system resource.
    pub system_volumes: BTreeMap<ResourceId, Bytes>,
    /// Optional makespan/throughput targets.
    pub targets: TargetSpec,
}

impl WorkflowCharacterization {
    /// Starts building a characterization.
    pub fn builder(name: impl Into<String>) -> CharacterizationBuilder {
        CharacterizationBuilder {
            inner: WorkflowCharacterization {
                name: name.into(),
                total_tasks: 1.0,
                parallel_tasks: 1.0,
                nodes_per_task: 1,
                makespan: None,
                node_volumes: BTreeMap::new(),
                system_volumes: BTreeMap::new(),
                targets: TargetSpec::NONE,
            },
        }
    }

    /// `total_tasks / parallel_tasks`: how many tasks one parallel slot
    /// retires serially. Always >= 1 for a valid characterization.
    pub fn kappa(&self) -> f64 {
        self.total_tasks / self.parallel_tasks
    }

    /// Achieved throughput `total_tasks / makespan` (the dot's y value).
    pub fn throughput(&self) -> Result<TasksPerSec, CoreError> {
        let m = self
            .makespan
            .ok_or_else(|| CoreError::MissingMakespan(self.name.clone()))?;
        Ok(TasksPerSec(self.total_tasks / m.get()))
    }

    /// Total nodes the workflow occupies when running at full width.
    pub fn nodes_in_use(&self) -> f64 {
        self.nodes_per_task as f64 * self.parallel_tasks
    }

    /// Checks structural validity: positive counts, valid volumes, and a
    /// parallelism that does not exceed the task count.
    pub fn validate(&self) -> Result<(), CoreError> {
        let check_pos = |v: f64, what: &str| -> Result<(), CoreError> {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(CoreError::InvalidInput(format!(
                    "{}: {what} must be positive, got {v}",
                    self.name
                )))
            }
        };
        check_pos(self.total_tasks, "total_tasks")?;
        check_pos(self.parallel_tasks, "parallel_tasks")?;
        if self.nodes_per_task == 0 {
            return Err(CoreError::InvalidInput(format!(
                "{}: nodes_per_task must be at least 1",
                self.name
            )));
        }
        if self.parallel_tasks > self.total_tasks {
            return Err(CoreError::InvalidInput(format!(
                "{}: parallel_tasks ({}) exceeds total_tasks ({})",
                self.name, self.parallel_tasks, self.total_tasks
            )));
        }
        if let Some(m) = self.makespan {
            check_pos(m.get(), "makespan")?;
        }
        for (id, w) in &self.node_volumes {
            if !(w.magnitude().is_finite() && w.magnitude() >= 0.0) {
                return Err(CoreError::InvalidInput(format!(
                    "{}: node volume {id} is invalid",
                    self.name
                )));
            }
        }
        for (id, b) in &self.system_volumes {
            if !b.is_valid() {
                return Err(CoreError::InvalidInput(format!(
                    "{}: system volume {id} is invalid",
                    self.name
                )));
            }
        }
        if let Some(t) = self.targets.makespan {
            check_pos(t.get(), "target makespan")?;
        }
        if let Some(t) = self.targets.throughput {
            check_pos(t.get(), "target throughput")?;
        }
        Ok(())
    }

    /// Returns a copy with a different measured makespan (used when the
    /// same plan is re-measured, e.g. good vs. bad days).
    pub fn with_makespan(&self, makespan: Seconds) -> Self {
        let mut c = self.clone();
        c.makespan = Some(makespan);
        c
    }

    /// Returns a copy with a different name (for plot legends).
    pub fn with_name(&self, name: impl Into<String>) -> Self {
        let mut c = self.clone();
        c.name = name.into();
        c
    }
}

/// Fluent construction of [`WorkflowCharacterization`].
#[derive(Debug, Clone)]
pub struct CharacterizationBuilder {
    inner: WorkflowCharacterization,
}

impl CharacterizationBuilder {
    /// Sets the total task count.
    pub fn total_tasks(mut self, n: f64) -> Self {
        self.inner.total_tasks = n;
        self
    }

    /// Sets the parallel task count (x coordinate).
    pub fn parallel_tasks(mut self, n: f64) -> Self {
        self.inner.parallel_tasks = n;
        self
    }

    /// Sets the nodes required per task.
    pub fn nodes_per_task(mut self, n: u64) -> Self {
        self.inner.nodes_per_task = n;
        self
    }

    /// Sets the measured makespan.
    pub fn makespan(mut self, m: Seconds) -> Self {
        self.inner.makespan = Some(m);
        self
    }

    /// Records per-node work for a node resource (adds to any existing
    /// volume of the same unit; replaces on unit mismatch).
    pub fn node_volume(mut self, id: impl Into<ResourceId>, work: Work) -> Self {
        let id = id.into();
        let merged = match self.inner.node_volumes.get(&id) {
            Some(old) => old.checked_add(work).unwrap_or(work),
            None => work,
        };
        self.inner.node_volumes.insert(id, merged);
        self
    }

    /// Records total workflow bytes through a shared system resource
    /// (accumulates).
    pub fn system_volume(mut self, id: impl Into<ResourceId>, bytes: Bytes) -> Self {
        let id = id.into();
        *self.inner.system_volumes.entry(id).or_insert(Bytes::ZERO) += bytes;
        self
    }

    /// Sets targets.
    pub fn targets(mut self, targets: TargetSpec) -> Self {
        self.inner.targets = targets;
        self
    }

    /// Sets only the makespan target.
    pub fn target_makespan(mut self, m: Seconds) -> Self {
        self.inner.targets.makespan = Some(m);
        self
    }

    /// Sets only the throughput target.
    pub fn target_throughput(mut self, t: TasksPerSec) -> Self {
        self.inner.targets.throughput = Some(t);
        self
    }

    /// Validates and returns the characterization.
    pub fn build(self) -> Result<WorkflowCharacterization, CoreError> {
        self.inner.validate()?;
        Ok(self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ids;
    use crate::units::Flops;

    fn lcls_like() -> WorkflowCharacterization {
        WorkflowCharacterization::builder("lcls")
            .total_tasks(6.0)
            .parallel_tasks(5.0)
            .nodes_per_task(32)
            .makespan(Seconds::minutes(17.0))
            .node_volume(ids::DRAM, Work::Bytes(Bytes::gb(32.0)))
            .system_volume(ids::EXTERNAL, Bytes::tb(5.0))
            .targets(TargetSpec::new(
                Seconds::secs(600.0),
                TasksPerSec(6.0 / 600.0),
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn throughput_and_kappa() {
        let c = lcls_like();
        assert!((c.kappa() - 1.2).abs() < 1e-12);
        let tps = c.throughput().unwrap();
        assert!((tps.get() - 6.0 / 1020.0).abs() < 1e-9);
        assert!((c.nodes_in_use() - 160.0).abs() < 1e-12);
    }

    #[test]
    fn missing_makespan_is_an_error() {
        let c = WorkflowCharacterization::builder("x").build().unwrap();
        assert!(matches!(c.throughput(), Err(CoreError::MissingMakespan(_))));
        let c2 = c.with_makespan(Seconds::secs(10.0));
        assert!((c2.throughput().unwrap().get() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn volumes_accumulate() {
        let c = WorkflowCharacterization::builder("acc")
            .node_volume(ids::COMPUTE, Work::Flops(Flops::pflops(1164.0 / 64.0)))
            .node_volume(ids::COMPUTE, Work::Flops(Flops::pflops(3226.0 / 64.0)))
            .system_volume(ids::FILE_SYSTEM, Bytes::gb(35.0))
            .system_volume(ids::FILE_SYSTEM, Bytes::gb(35.0))
            .build()
            .unwrap();
        let w = c.node_volumes.get(ids::COMPUTE).unwrap();
        assert!((w.magnitude() - (1164.0 + 3226.0) / 64.0 * 1e15).abs() < 1e3);
        assert_eq!(
            c.system_volumes.get(ids::FILE_SYSTEM),
            Some(&Bytes::gb(70.0))
        );
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        assert!(WorkflowCharacterization::builder("z")
            .total_tasks(0.0)
            .build()
            .is_err());
        assert!(WorkflowCharacterization::builder("z")
            .total_tasks(2.0)
            .parallel_tasks(3.0)
            .build()
            .is_err());
        assert!(WorkflowCharacterization::builder("z")
            .nodes_per_task(0)
            .build()
            .is_err());
        assert!(WorkflowCharacterization::builder("z")
            .makespan(Seconds(-1.0))
            .build()
            .is_err());
        assert!(WorkflowCharacterization::builder("z")
            .target_makespan(Seconds(0.0))
            .build()
            .is_err());
    }

    #[test]
    fn fractional_task_units_are_allowed() {
        // CosmoFlow counts epochs: 12 instances x 25 epochs each.
        let c = WorkflowCharacterization::builder("cosmoflow")
            .total_tasks(12.0 * 25.0)
            .parallel_tasks(12.0)
            .nodes_per_task(128)
            .build()
            .unwrap();
        assert!((c.kappa() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip() {
        let c = lcls_like();
        let json = serde_json::to_string(&c).unwrap();
        let back: WorkflowCharacterization = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
