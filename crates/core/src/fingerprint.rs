//! Stable content hashing for cache keys and corpus dedup.
//!
//! The serve layer keys its compiled-index cache by a *content hash* of
//! the `(workflow, machine)` pair: two requests posting semantically
//! identical specs must land on the same cache entry, across processes,
//! platforms and serialization quirks. That pins three properties:
//!
//! * **Byte-order stability.** The hash is FNV-1a over an explicit byte
//!   stream; every multi-byte quantity is fed through a fixed
//!   little-endian encoding, so the result is identical on big- and
//!   little-endian hosts and across runs (no `RandomState`).
//! * **Key-order insensitivity.** JSON object keys are sorted before
//!   hashing, so `{"a":1,"b":2}` and `{"b":2,"a":1}` fingerprint
//!   identically — the vendored `serde` `Value` preserves insertion
//!   order, which a cache key must not depend on.
//! * **Structural framing.** Every node is prefixed with a type tag and
//!   strings/containers with their lengths, so concatenation ambiguities
//!   (`["ab","c"]` vs `["a","bc"]`) cannot collide by construction.
//!
//! The canonical serialization of a value is whatever its `Serialize`
//! impl produces as a `serde::value::Value` tree; [`fingerprint`] hashes
//! that tree canonically.

use serde::value::{Number, Value};

/// The 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental 64-bit FNV-1a hasher.
///
/// Deterministic across processes and platforms — unlike
/// `std::collections::hash_map::DefaultHasher`, which is seeded per
/// process and explicitly unstable across releases.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self(FNV_OFFSET)
    }
}

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds `bytes` into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a `u64` in fixed little-endian encoding.
    pub fn update_u64(&mut self, n: u64) {
        self.update(&n.to_le_bytes());
    }

    /// The current hash value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a of a raw byte string.
#[must_use]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

// Type tags framing each canonical node. Chosen once; changing any of
// these changes every fingerprint, so they are part of the format.
const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_U64: u8 = 3;
const TAG_I64: u8 = 4;
const TAG_F64: u8 = 5;
const TAG_STR: u8 = 6;
const TAG_ARR: u8 = 7;
const TAG_OBJ: u8 = 8;

fn hash_value(h: &mut Fnv1a, v: &Value) {
    match v {
        Value::Null => h.update(&[TAG_NULL]),
        Value::Bool(false) => h.update(&[TAG_FALSE]),
        Value::Bool(true) => h.update(&[TAG_TRUE]),
        Value::Number(n) => match *n {
            // Integer-valued floats hash as their integer identity so a
            // round-trip through JSON text ("2e3" vs "2000") cannot
            // split a cache entry; sign matters, NaN is normalized.
            Number::U64(u) => {
                h.update(&[TAG_U64]);
                h.update_u64(u);
            }
            Number::I64(i) => {
                if let Ok(u) = u64::try_from(i) {
                    h.update(&[TAG_U64]);
                    h.update_u64(u);
                } else {
                    h.update(&[TAG_I64]);
                    h.update_u64(i as u64);
                }
            }
            Number::F64(f) => {
                if f.fract() == 0.0 && (0.0..=u64::MAX as f64).contains(&f) && f.is_sign_positive()
                {
                    h.update(&[TAG_U64]);
                    h.update_u64(f as u64);
                } else if f.fract() == 0.0 && (i64::MIN as f64..0.0).contains(&f) {
                    h.update(&[TAG_I64]);
                    h.update_u64(f as i64 as u64);
                } else {
                    h.update(&[TAG_F64]);
                    let bits = if f.is_nan() {
                        f64::NAN.to_bits()
                    } else {
                        f.to_bits()
                    };
                    h.update_u64(bits);
                }
            }
        },
        Value::String(s) => {
            h.update(&[TAG_STR]);
            h.update_u64(s.len() as u64);
            h.update(s.as_bytes());
        }
        Value::Array(items) => {
            h.update(&[TAG_ARR]);
            h.update_u64(items.len() as u64);
            for item in items {
                hash_value(h, item);
            }
        }
        Value::Object(entries) => {
            // Sort keys (by byte value) so insertion order is
            // irrelevant. Duplicate keys keep their relative order —
            // a degenerate input, but still deterministic.
            let mut order: Vec<usize> = (0..entries.len()).collect();
            order.sort_by(|&a, &b| entries[a].0.as_bytes().cmp(entries[b].0.as_bytes()));
            h.update(&[TAG_OBJ]);
            h.update_u64(entries.len() as u64);
            for ix in order {
                let (k, v) = &entries[ix];
                h.update(&[TAG_STR]);
                h.update_u64(k.len() as u64);
                h.update(k.as_bytes());
                hash_value(h, v);
            }
        }
    }
}

/// Canonical content hash of any serializable value: its `Value` tree
/// hashed with sorted object keys and fixed little-endian scalar
/// encodings. Stable across runs, processes and platforms.
#[must_use]
pub fn fingerprint<T: serde::Serialize + ?Sized>(value: &T) -> u64 {
    fingerprint_value(&value.to_value())
}

/// [`fingerprint`] of an already-built `Value` tree.
#[must_use]
pub fn fingerprint_value(v: &Value) -> u64 {
    let mut h = Fnv1a::new();
    hash_value(&mut h, v);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_known_answers() {
        // Published FNV-1a 64-bit test vectors: the empty string hashes
        // to the offset basis, and "a"/"foobar" to their classic values.
        assert_eq!(hash_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash_bytes(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn key_order_is_irrelevant() {
        let ab = Value::Object(vec![
            ("alpha".into(), Value::Number(Number::U64(1))),
            ("beta".into(), Value::Number(Number::U64(2))),
        ]);
        let ba = Value::Object(vec![
            ("beta".into(), Value::Number(Number::U64(2))),
            ("alpha".into(), Value::Number(Number::U64(1))),
        ]);
        assert_eq!(fingerprint_value(&ab), fingerprint_value(&ba));
        // ...including in nested objects.
        let nested_ab = Value::Object(vec![("outer".into(), ab)]);
        let nested_ba = Value::Object(vec![("outer".into(), ba)]);
        assert_eq!(fingerprint_value(&nested_ab), fingerprint_value(&nested_ba));
    }

    #[test]
    fn framing_prevents_concatenation_collisions() {
        let a = Value::Array(vec![Value::String("ab".into()), Value::String("c".into())]);
        let b = Value::Array(vec![Value::String("a".into()), Value::String("bc".into())]);
        assert_ne!(fingerprint_value(&a), fingerprint_value(&b));
    }

    #[test]
    fn value_distinctions_matter() {
        let cases = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Number(Number::U64(0)),
            Value::String(String::new()),
            Value::Array(vec![]),
            Value::Object(vec![]),
            Value::String("0".into()),
            Value::Number(Number::F64(0.5)),
        ];
        for (i, a) in cases.iter().enumerate() {
            for (j, b) in cases.iter().enumerate() {
                if i != j {
                    assert_ne!(fingerprint_value(a), fingerprint_value(b), "{a:?} vs {b:?}");
                }
            }
        }
    }

    #[test]
    fn numeric_identity_survives_representation() {
        // The same mathematical integer fingerprints identically whether
        // it arrived as u64, i64 or a whole f64 (JSON text round-trips
        // may produce any of them).
        let u = Value::Number(Number::U64(2000));
        let i = Value::Number(Number::I64(2000));
        let f = Value::Number(Number::F64(2000.0));
        assert_eq!(fingerprint_value(&u), fingerprint_value(&i));
        assert_eq!(fingerprint_value(&u), fingerprint_value(&f));
        let ni = Value::Number(Number::I64(-3));
        let nf = Value::Number(Number::F64(-3.0));
        assert_eq!(fingerprint_value(&ni), fingerprint_value(&nf));
    }

    #[test]
    fn byte_order_stable_golden_values() {
        // Golden fingerprints: computed once with the explicit
        // little-endian encoding below; any change to the canonical
        // format (tags, lengths, endianness) fails this test. Because
        // every multi-byte scalar goes through `to_le_bytes`, these
        // values are identical on little- and big-endian hosts.
        let mut h = Fnv1a::new();
        h.update_u64(0x0102_0304_0506_0708);
        assert_eq!(h.finish(), {
            // Equivalent explicit byte feed: LE means 08 07 .. 01.
            let mut e = Fnv1a::new();
            e.update(&[8, 7, 6, 5, 4, 3, 2, 1]);
            e.finish()
        });
        let v = Value::Object(vec![
            ("name".into(), Value::String("wf".into())),
            ("tasks".into(), Value::Array(vec![])),
        ]);
        assert_eq!(fingerprint_value(&v), 0x33b3_d916_5f45_6dd1);
    }

    #[test]
    fn serializable_types_fingerprint_through_serde() {
        // The convenience wrapper hashes anything Serialize; equal
        // values hash equal, different values differ.
        let a = fingerprint(&vec![1u64, 2, 3]);
        let b = fingerprint(&vec![1u64, 2, 3]);
        let c = fingerprint(&vec![3u64, 2, 1]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
