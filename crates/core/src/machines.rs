//! Built-in machine models with the exact peaks from the paper's
//! artifact appendix (Perlmutter architecture white paper and the Cori
//! Haswell configuration).
//!
//! | machine | nodes | compute/node | mem BW/node | PCIe/node | FS | NIC/node | external |
//! |---|---|---|---|---|---|---|---|
//! | PM-GPU  | 1792 | 4 x 9.7 TFLOPS | 4 x 1555 GB/s HBM | 4 x 25 GB/s | 5.6 TB/s | 100 GB/s | 25 GB/s |
//! | PM-CPU  | 3072 | 5 TFLOPS | 2 x 204.8 GB/s DRAM | - | 4.8 TB/s | 25 GB/s | 25 GB/s |
//! | Cori-HSW | 2388 | 1.2 TFLOPS | 129 GB/s | - | 910 GB/s (BB) | 16 GB/s | 5 GB/s |
//!
//! Cori's external bandwidth is modelled as the 5 GB/s aggregate the paper
//! observes on good days (5 streams x 1 GB/s); contended scenarios scale it
//! down with [`crate::machine::Machine::with_scaled_resource`].

use crate::machine::Machine;
use crate::resource::ids;
use crate::units::{BytesPerSec, FlopsPerSec, Rate};

/// The Perlmutter GPU partition (PM-GPU): 1792 nodes of 1 AMD Milan +
/// 4 NVIDIA A100.
pub fn perlmutter_gpu() -> Machine {
    Machine::builder("Perlmutter GPU", 1792)
        .node(
            ids::COMPUTE,
            "GPU FLOPS",
            // 4 x 9.7 TFLOPS (FP64) per node.
            Rate::FlopsPerSec(FlopsPerSec::tflops(4.0 * 9.7)),
        )
        .node(
            ids::HBM,
            "HBM",
            // 4 x 1555 GB/s per node.
            Rate::BytesPerSec(BytesPerSec::gbps(4.0 * 1555.0)),
        )
        .node(
            ids::PCIE,
            "PCIe",
            // 4 x PCIe 4.0 at 25 GB/s/direction.
            Rate::BytesPerSec(BytesPerSec::gbps(4.0 * 25.0)),
        )
        .system(
            ids::FILE_SYSTEM,
            "File System",
            // 14 GPU groups x 4 I/O groups x 100 GB/s.
            BytesPerSec::tbps(5.6),
        )
        .system_per_node(
            ids::NETWORK,
            "System Network",
            // 4 PCIe 4.0 NICs per node, 100 GB/s/direction total.
            BytesPerSec::gbps(100.0),
        )
        .system(
            ids::EXTERNAL,
            "System External",
            // Data-transfer-node bandwidth to the internet.
            BytesPerSec::gbps(25.0),
        )
        .build()
        .expect("preset is valid")
}

/// The Perlmutter CPU partition (PM-CPU): 3072 nodes of 2 AMD Milan.
pub fn perlmutter_cpu() -> Machine {
    Machine::builder("Perlmutter CPU", 3072)
        .node(
            ids::COMPUTE,
            "CPU FLOPS",
            Rate::FlopsPerSec(FlopsPerSec::tflops(5.0)),
        )
        .node(
            ids::DRAM,
            "CPU Bytes",
            // 2 sockets x 204.8 GB/s. Per-socket figures in the paper
            // (e.g. GPTune's 3344 MB per socket) are divided by the
            // per-socket peak; use `dram_per_socket` for those.
            Rate::BytesPerSec(BytesPerSec::gbps(2.0 * 204.8)),
        )
        .system(
            ids::FILE_SYSTEM,
            "File System",
            // 12 CPU groups x 4 I/O groups x 100 GB/s.
            BytesPerSec::tbps(4.8),
        )
        .system_per_node(ids::NETWORK, "System Network", BytesPerSec::gbps(25.0))
        .system(ids::EXTERNAL, "System External", BytesPerSec::gbps(25.0))
        .build()
        .expect("preset is valid")
}

/// Per-socket DRAM bandwidth of a PM-CPU node (one AMD Milan socket).
pub fn pm_cpu_dram_per_socket() -> BytesPerSec {
    BytesPerSec::gbps(204.8)
}

/// Cori Haswell (Cori-HSW), the deprecated Cray XC40 used for the LCLS
/// case study: 2388 nodes, 910 GB/s aggregate burst-buffer bandwidth
/// (140 BB nodes x 6.5 GB/s), 129 GB/s memory bandwidth per node.
///
/// The external link defaults to the paper's good-day aggregate of
/// 5 GB/s (five 1 GB/s streams).
pub fn cori_haswell() -> Machine {
    Machine::builder("Cori Haswell", 2388)
        .node(
            ids::COMPUTE,
            "CPU FLOPS",
            // ~1.2 TFLOPS per dual-socket Haswell node.
            Rate::FlopsPerSec(FlopsPerSec::tflops(1.2)),
        )
        .node(
            ids::DRAM,
            "CPU Bytes",
            Rate::BytesPerSec(BytesPerSec::gbps(129.0)),
        )
        .system(
            ids::BURST_BUFFER,
            "System Internal",
            // 140 burst-buffer nodes x 6.5 GB/s.
            BytesPerSec::gbps(910.0),
        )
        .system_per_node(
            ids::NETWORK,
            "System Network",
            // Aries NIC injection bandwidth.
            BytesPerSec::gbps(16.0),
        )
        .system(ids::EXTERNAL, "System External", BytesPerSec::gbps(5.0))
        .build()
        .expect("preset is valid")
}

/// All built-in machines, for enumeration in CLIs and tests.
pub fn all() -> Vec<Machine> {
    vec![perlmutter_gpu(), perlmutter_cpu(), cori_haswell()]
}

/// The canonical short names accepted by [`by_name`], for help and
/// diagnostic text.
pub fn short_names() -> &'static [&'static str] {
    &["pm-gpu", "pm-cpu", "cori-hsw"]
}

/// Looks up a built-in machine by a case-insensitive short name:
/// `pm-gpu`, `pm-cpu`, or `cori-hsw` (aliases: `perlmutter-gpu`,
/// `perlmutter-cpu`, `cori-haswell`).
pub fn by_name(name: &str) -> Option<Machine> {
    match name.to_ascii_lowercase().as_str() {
        "pm-gpu" | "pm_gpu" | "perlmutter-gpu" | "perlmutter_gpu" => Some(perlmutter_gpu()),
        "pm-cpu" | "pm_cpu" | "perlmutter-cpu" | "perlmutter_cpu" => Some(perlmutter_cpu()),
        "cori-hsw" | "cori_hsw" | "cori-haswell" | "cori_haswell" => Some(cori_haswell()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pm_gpu_peaks_match_appendix() {
        let m = perlmutter_gpu();
        assert_eq!(m.total_nodes, 1792);
        let flops = m.node_resource(ids::COMPUTE).unwrap();
        assert!((flops.peak_per_node.magnitude() - 38.8e12).abs() < 1e6);
        let hbm = m.node_resource(ids::HBM).unwrap();
        assert!((hbm.peak_per_node.magnitude() - 6220e9).abs() < 1e6);
        let pcie = m.node_resource(ids::PCIE).unwrap();
        assert!((pcie.peak_per_node.magnitude() - 100e9).abs() < 1e-3);
        let fs = m.system_resource(ids::FILE_SYSTEM).unwrap();
        assert!((fs.peak.get() - 5.6e12).abs() < 1e-3);
        let nic = m.system_resource(ids::NETWORK).unwrap();
        assert!((nic.aggregate_for(64.0).get() - 6.4e12).abs() < 1e-3);
    }

    #[test]
    fn pm_cpu_peaks_match_appendix() {
        let m = perlmutter_cpu();
        assert_eq!(m.total_nodes, 3072);
        assert!(
            (m.node_resource(ids::COMPUTE)
                .unwrap()
                .peak_per_node
                .magnitude()
                - 5e12)
                .abs()
                < 1e-3
        );
        assert!(
            (m.node_resource(ids::DRAM)
                .unwrap()
                .peak_per_node
                .magnitude()
                - 409.6e9)
                .abs()
                < 1e-3
        );
        assert!((m.system_resource(ids::FILE_SYSTEM).unwrap().peak.get() - 4.8e12).abs() < 1e-3);
        assert!((m.system_resource(ids::EXTERNAL).unwrap().peak.get() - 25e9).abs() < 1e-3);
        assert!((pm_cpu_dram_per_socket().get() - 204.8e9).abs() < 1e-3);
    }

    #[test]
    fn cori_peaks_match_appendix() {
        let m = cori_haswell();
        assert_eq!(m.total_nodes, 2388);
        assert!((m.system_resource(ids::BURST_BUFFER).unwrap().peak.get() - 910e9).abs() < 1e-3);
        assert!(
            (m.node_resource(ids::DRAM)
                .unwrap()
                .peak_per_node
                .magnitude()
                - 129e9)
                .abs()
                < 1e-3
        );
        assert!((m.system_resource(ids::EXTERNAL).unwrap().peak.get() - 5e9).abs() < 1e-3);
    }

    #[test]
    fn lcls_parallelism_walls_match_paper() {
        // Paper Fig. 5: system parallelism @ 74 tasks on Cori for 32-node
        // tasks (2388/32 = 74); Fig. 6: 384 tasks on PM-CPU (3072/8 = 384).
        assert_eq!(cori_haswell().parallelism_wall(32).unwrap(), 74);
        assert_eq!(perlmutter_cpu().parallelism_wall(8).unwrap(), 384);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("PM-GPU").unwrap().name, "Perlmutter GPU");
        assert_eq!(by_name("perlmutter_cpu").unwrap().name, "Perlmutter CPU");
        assert_eq!(by_name("cori-haswell").unwrap().name, "Cori Haswell");
        assert!(by_name("summit").is_none());
    }

    #[test]
    fn all_presets_validate() {
        for m in all() {
            m.validate().unwrap();
        }
        assert_eq!(all().len(), 3);
    }
}
