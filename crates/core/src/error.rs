//! Error type for model construction and evaluation.

use std::fmt;

/// Errors produced while building machines, characterizations, or
/// evaluating the Workflow Roofline Model.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A numeric or structural input was out of range.
    InvalidInput(String),
    /// A resource id was referenced but is not defined on the machine.
    UnknownResource(String),
    /// The same resource id was defined twice on one machine.
    DuplicateResource(String),
    /// A workflow volume's unit does not match the machine resource's unit
    /// (e.g. bytes against a FLOP/s peak).
    UnitMismatch {
        /// The offending resource.
        resource: String,
        /// Unit of the workflow volume.
        volume_unit: String,
        /// Unit of the machine peak.
        peak_unit: String,
    },
    /// A task requires more nodes than the machine has.
    TaskTooLarge {
        /// Nodes each task requires.
        nodes_per_task: u64,
        /// Nodes the machine offers.
        total_nodes: u64,
    },
    /// The workflow characterization is missing a measured makespan where
    /// one is required (plotting the empirical dot).
    MissingMakespan(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            CoreError::UnknownResource(id) => write!(f, "unknown resource id: {id}"),
            CoreError::DuplicateResource(id) => write!(f, "duplicate resource id: {id}"),
            CoreError::UnitMismatch {
                resource,
                volume_unit,
                peak_unit,
            } => write!(
                f,
                "unit mismatch on {resource}: workflow volume in {volume_unit} \
                 but machine peak in {peak_unit}"
            ),
            CoreError::TaskTooLarge {
                nodes_per_task,
                total_nodes,
            } => write!(
                f,
                "a task needs {nodes_per_task} nodes but the machine has {total_nodes}"
            ),
            CoreError::MissingMakespan(wf) => {
                write!(f, "workflow {wf} has no measured makespan")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CoreError::UnitMismatch {
            resource: "hbm".into(),
            volume_unit: "flops".into(),
            peak_unit: "bytes".into(),
        };
        assert!(e.to_string().contains("hbm"));
        assert!(CoreError::UnknownResource("x".into())
            .to_string()
            .contains("x"));
        assert!(CoreError::TaskTooLarge {
            nodes_per_task: 2048,
            total_nodes: 1792
        }
        .to_string()
        .contains("1792"));
        assert!(CoreError::MissingMakespan("bgw".into())
            .to_string()
            .contains("bgw"));
        assert!(CoreError::InvalidInput("nope".into())
            .to_string()
            .contains("nope"));
        assert!(CoreError::DuplicateResource("fs".into())
            .to_string()
            .contains("fs"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&CoreError::InvalidInput("x".into()));
    }
}
