//! SVG rendering of Workflow Roofline models (the paper's Figs. 1,
//! 5a, 6, 7a–c, 8, 10a).
//!
//! One plot can overlay several models (e.g. good vs. bad days, RCI vs.
//! Spawn): the first model draws the ceilings and wall; later models
//! contribute extra ceilings only if they differ, and every model's dot
//! is drawn with its own colour.

use crate::scale::{log_domain, tick_label, LogScale};
use crate::svg::{Anchor, Svg};
use wrm_core::{CeilingKind, RooflineModel, Seconds, TasksPerSec};

/// Palette for dots, cycled in order.
const DOT_COLORS: [&str; 6] = [
    "#2e7d32", "#c62828", "#1565c0", "#ef6c00", "#6a1b9a", "#00838f",
];

/// Palette for ceilings (node = warm, system = cool tones chosen per
/// index).
const CEILING_COLORS: [&str; 6] = [
    "#37474f", "#5d4037", "#00695c", "#4527a0", "#b71c1c", "#1b5e20",
];

/// An extra dot to overlay (projections, per-task points).
#[derive(Debug, Clone)]
pub struct ExtraDot {
    /// Legend label.
    pub label: String,
    /// Parallel tasks (x).
    pub x: f64,
    /// Throughput (y).
    pub tps: TasksPerSec,
    /// Fill color (empty = auto from the palette).
    pub color: String,
    /// Hollow (projection) instead of filled.
    pub hollow: bool,
    /// Optional vertical throughput whisker `(lo, hi)` through the dot,
    /// e.g. Monte-Carlo percentile makespans mapped to tasks/s.
    pub whisker: Option<(TasksPerSec, TasksPerSec)>,
}

/// Builder for a roofline figure.
#[derive(Debug, Clone)]
pub struct RooflinePlot {
    title: String,
    models: Vec<RooflineModel>,
    extra_dots: Vec<ExtraDot>,
    primary_whisker: Option<(TasksPerSec, TasksPerSec)>,
    show_targets: bool,
    show_zones: bool,
    width: f64,
    height: f64,
}

impl RooflinePlot {
    /// Starts a plot.
    pub fn new(title: impl Into<String>) -> Self {
        RooflinePlot {
            title: title.into(),
            models: Vec::new(),
            extra_dots: Vec::new(),
            primary_whisker: None,
            show_targets: true,
            show_zones: false,
            width: 760.0,
            height: 540.0,
        }
    }

    /// Adds a model (ceilings + wall from the first one; dots from all).
    pub fn model(mut self, model: &RooflineModel) -> Self {
        self.models.push(model.clone());
        self
    }

    /// Adds a standalone dot.
    pub fn dot(mut self, dot: ExtraDot) -> Self {
        self.extra_dots.push(dot);
        self
    }

    /// Attaches a vertical throughput whisker to the first model's dot
    /// (e.g. Monte-Carlo percentile makespans mapped to tasks/s).
    pub fn whisker(mut self, lo: TasksPerSec, hi: TasksPerSec) -> Self {
        self.primary_whisker = Some((lo, hi));
        self
    }

    /// Toggles target-line rendering.
    pub fn targets(mut self, show: bool) -> Self {
        self.show_targets = show;
        self
    }

    /// Shades the four target zones of Fig. 2a (needs both targets on
    /// the first model).
    pub fn zones(mut self, show: bool) -> Self {
        self.show_zones = show;
        self
    }

    /// Sets the canvas size in pixels.
    pub fn size(mut self, width: f64, height: f64) -> Self {
        self.width = width;
        self.height = height;
        self
    }

    /// Renders the SVG document. Returns `None` when no model was added.
    pub fn render_svg(&self) -> Option<String> {
        let primary = self.models.first()?;
        let wall = primary.parallelism_wall as f64;

        // Collect y values that must be visible.
        let mut ys: Vec<f64> = Vec::new();
        let mut xs: Vec<f64> = vec![0.5, wall * 2.0];
        for m in &self.models {
            for c in &m.ceilings {
                ys.push(c.tps_at(1.0).get());
                ys.push(c.tps_at(wall).get());
            }
            if let Some(d) = &m.dot {
                ys.push(d.tps.get());
                xs.push(d.x);
            }
            if let Some(t) = m.workflow.targets.throughput {
                ys.push(t.get());
            }
            if let Some(t) = m.workflow.targets.makespan {
                ys.push(m.makespan_isoline_at(t, m.workflow.parallel_tasks).get());
            }
        }
        for d in &self.extra_dots {
            ys.push(d.tps.get());
            xs.push(d.x);
            if let Some((lo, hi)) = d.whisker {
                ys.push(lo.get());
                ys.push(hi.get());
            }
        }
        if let Some((lo, hi)) = self.primary_whisker {
            ys.push(lo.get());
            ys.push(hi.get());
        }
        let (x_lo, x_hi) = log_domain(xs);
        let (y_lo, y_hi) = log_domain(ys);

        let ml = 72.0; // margins
        let mr = 24.0;
        let mt = 40.0;
        let mb = 56.0;
        let sx = LogScale::new(x_lo, x_hi, ml, self.width - mr);
        let sy = LogScale::new(y_lo, y_hi, self.height - mb, mt);

        let mut svg = Svg::new(self.width, self.height);
        svg.text(
            self.width / 2.0,
            24.0,
            &self.title,
            16.0,
            "#111111",
            Anchor::Middle,
            None,
        );

        // Axes and grid.
        for t in sx.decade_ticks() {
            let px = sx.px(t);
            svg.line(px, mt, px, self.height - mb, "#e0e0e0", 1.0, None);
            svg.text(
                px,
                self.height - mb + 18.0,
                &tick_label(t),
                11.0,
                "#444444",
                Anchor::Middle,
                None,
            );
        }
        for t in sy.decade_ticks() {
            let py = sy.px(t);
            svg.line(ml, py, self.width - mr, py, "#e0e0e0", 1.0, None);
            svg.text(
                ml - 6.0,
                py + 4.0,
                &tick_label(t),
                11.0,
                "#444444",
                Anchor::End,
                None,
            );
        }
        svg.line(
            ml,
            self.height - mb,
            self.width - mr,
            self.height - mb,
            "#222222",
            1.5,
            None,
        );
        svg.line(ml, mt, ml, self.height - mb, "#222222", 1.5, None);
        svg.text(
            (ml + self.width - mr) / 2.0,
            self.height - 14.0,
            "Number of Parallel Tasks",
            13.0,
            "#111111",
            Anchor::Middle,
            None,
        );
        svg.text(
            20.0,
            (mt + self.height - mb) / 2.0,
            "Throughput [tasks/s]",
            13.0,
            "#111111",
            Anchor::Middle,
            Some(-90.0),
        );

        // The four target zones of Fig. 2a: split by the target-makespan
        // isoline (diagonal) and the target-throughput line (horizontal).
        // In pixel space (y grows downward): green occupies pixels above
        // both boundary curves, red below both, yellow/orange between
        // them depending on which boundary is lower.
        if self.show_zones {
            if let (Some(tm), Some(tt)) = (
                primary.workflow.targets.makespan,
                primary.workflow.targets.throughput,
            ) {
                let samples = 48;
                let mut xs_px = Vec::with_capacity(samples + 1);
                let mut iso_px = Vec::with_capacity(samples + 1);
                for i in 0..=samples {
                    let lx =
                        x_lo.log10() + (x_hi.log10() - x_lo.log10()) * i as f64 / samples as f64;
                    let x = 10f64.powf(lx);
                    let iso = primary.makespan_isoline_at(tm, x).get();
                    xs_px.push(sx.px(x));
                    iso_px.push(sy.px(iso.clamp(y_lo, y_hi)));
                }
                let y_t_px = sy.px(tt.get().clamp(y_lo, y_hi));
                let top = mt;
                let bottom = self.height - mb;
                // Fills the band between two per-column pixel bounds
                // (hi above lo; empty columns collapse to a point).
                let mut band =
                    |color: &str, hi: &dyn Fn(usize) -> f64, lo: &dyn Fn(usize) -> f64| {
                        let mut poly: Vec<(f64, f64)> = Vec::new();
                        for (i, &x) in xs_px.iter().enumerate() {
                            poly.push((x, hi(i).clamp(top, bottom)));
                        }
                        for (i, &x) in xs_px.iter().enumerate().rev() {
                            let l = lo(i).clamp(top, bottom);
                            poly.push((x, l.max(hi(i).clamp(top, bottom))));
                        }
                        svg.polygon(&poly, color, 0.10);
                    };
                // green: [top, min(iso, y_t)]
                band("#2e7d32", &|_| top, &|i| iso_px[i].min(y_t_px));
                // yellow: meets the deadline, misses the rate --
                // between the throughput line and the isoline where the
                // isoline sits below it (larger py).
                band("#f9a825", &|_| y_t_px, &|i| iso_px[i].max(y_t_px));
                // orange: meets the rate, misses the deadline.
                band("#ef6c00", &|i| iso_px[i], &|i| y_t_px.max(iso_px[i]));
                // red: [max(iso, y_t), bottom]
                band("#c62828", &|i| iso_px[i].max(y_t_px), &|_| bottom);
            }
        }

        // Unattainable region: above the envelope and right of the wall.
        let wall_px = sx.px(wall);
        if sx.contains(wall) {
            svg.polygon(
                &[
                    (wall_px, mt),
                    (self.width - mr, mt),
                    (self.width - mr, self.height - mb),
                    (wall_px, self.height - mb),
                ],
                "#9e9e9e",
                0.25,
            );
            svg.line(wall_px, mt, wall_px, self.height - mb, "#424242", 2.0, None);
            svg.text(
                wall_px - 6.0,
                mt + 14.0,
                &format!("System parallelism @ {} tasks", primary.parallelism_wall),
                11.0,
                "#424242",
                Anchor::End,
                None,
            );
        }
        // Shade above the envelope (sampled), left of the wall.
        let mut upper: Vec<(f64, f64)> = Vec::new();
        let samples = 64;
        for i in 0..=samples {
            let lx =
                x_lo.log10() + (wall.min(x_hi).log10() - x_lo.log10()) * i as f64 / samples as f64;
            let x = 10f64.powf(lx);
            if let Some(env) = primary.envelope_at(x) {
                if env.get().is_finite() {
                    upper.push((sx.px(x), sy.px(env.get())));
                }
            }
        }
        if upper.len() > 1 {
            let mut poly = vec![(upper[0].0, mt)];
            poly.extend(upper.iter().copied());
            poly.push((upper.last().expect("non-empty").0, mt));
            svg.polygon(&poly, "#bdbdbd", 0.35);
        }

        // Ceilings from the primary model.
        for (i, c) in primary.ceilings.iter().enumerate() {
            let color = CEILING_COLORS[i % CEILING_COLORS.len()];
            match c.kind {
                CeilingKind::Node => {
                    // Solid up to the wall, dashed beyond.
                    let x_end = wall.min(x_hi);
                    svg.line(
                        sx.px(x_lo),
                        sy.px(c.tps_at(x_lo).get()),
                        sx.px(x_end),
                        sy.px(c.tps_at(x_end).get()),
                        color,
                        2.0,
                        None,
                    );
                    if x_hi > wall {
                        svg.line(
                            sx.px(wall),
                            sy.px(c.tps_at(wall).get()),
                            sx.px(x_hi),
                            sy.px(c.tps_at(x_hi).get()),
                            color,
                            1.5,
                            Some("5 4"),
                        );
                    }
                }
                CeilingKind::System => {
                    let y = sy.px(c.tps_at_one.get());
                    svg.line(sx.px(x_lo), y, sx.px(wall.min(x_hi)), y, color, 2.0, None);
                    if x_hi > wall {
                        svg.line(sx.px(wall), y, sx.px(x_hi), y, color, 1.5, Some("5 4"));
                    }
                }
            }
            let label_y = match c.kind {
                CeilingKind::Node => sy.px(c.tps_at(x_lo * 1.6).get()) - 6.0,
                CeilingKind::System => sy.px(c.tps_at_one.get()) - 6.0,
            };
            svg.text(
                sx.px(x_lo * 1.25),
                label_y.max(mt + 10.0),
                &c.label,
                10.5,
                color,
                Anchor::Start,
                None,
            );
        }

        // Target lines from the primary model.
        if self.show_targets {
            if let Some(tp) = primary.workflow.targets.throughput {
                let y = sy.px(tp.get());
                svg.line(ml, y, self.width - mr, y, "#880e4f", 1.5, Some("2 3"));
                svg.text(
                    self.width - mr - 4.0,
                    y - 5.0,
                    &format!("target throughput = {tp}"),
                    10.5,
                    "#880e4f",
                    Anchor::End,
                    None,
                );
            }
            if let Some(tm) = primary.workflow.targets.makespan {
                let y1 = primary.makespan_isoline_at(tm, x_lo).get();
                let y2 = primary.makespan_isoline_at(tm, x_hi).get();
                svg.line(
                    sx.px(x_lo),
                    sy.px(y1),
                    sx.px(x_hi),
                    sy.px(y2),
                    "#4a148c",
                    1.5,
                    Some("2 3"),
                );
                svg.text(
                    sx.px(x_lo * 1.25),
                    sy.px(primary.makespan_isoline_at(tm, x_lo * 1.25).get()) + 14.0,
                    &format!("target makespan = {}", Seconds(tm.get())),
                    10.5,
                    "#4a148c",
                    Anchor::Start,
                    None,
                );
            }
        }

        // Dots: one per model plus extras. Whiskers go under the dots.
        let mut legend_y = mt + 16.0;
        let mut color_idx = 0usize;
        let draw_whisker = |svg: &mut Svg, x: f64, lo: f64, hi: f64, color: &str| {
            let px = sx.px(x);
            let (py_lo, py_hi) = (sy.px(lo), sy.px(hi));
            svg.line(px, py_lo, px, py_hi, color, 1.5, None);
            for py in [py_lo, py_hi] {
                svg.line(px - 5.0, py, px + 5.0, py, color, 1.5, None);
            }
        };
        let draw_dot = |svg: &mut Svg,
                        label: &str,
                        x: f64,
                        tps: f64,
                        color: &str,
                        hollow: bool,
                        legend_y: &mut f64| {
            let (px, py) = (sx.px(x), sy.px(tps));
            if hollow {
                svg.circle(px, py, 6.0, "#ffffff", Some(color));
            } else {
                svg.circle(px, py, 6.0, color, Some("#00000033"));
            }
            svg.circle(
                ml + 10.0,
                *legend_y - 4.0,
                5.0,
                if hollow { "#ffffff" } else { color },
                Some(color),
            );
            svg.text(
                ml + 20.0,
                *legend_y,
                label,
                11.0,
                "#111111",
                Anchor::Start,
                None,
            );
            *legend_y += 16.0;
        };
        for (mi, m) in self.models.iter().enumerate() {
            if let Some(d) = &m.dot {
                let color = DOT_COLORS[color_idx % DOT_COLORS.len()];
                color_idx += 1;
                if mi == 0 {
                    if let Some((lo, hi)) = self.primary_whisker {
                        draw_whisker(&mut svg, d.x, lo.get(), hi.get(), color);
                    }
                }
                draw_dot(
                    &mut svg,
                    &d.label,
                    d.x,
                    d.tps.get(),
                    color,
                    false,
                    &mut legend_y,
                );
            }
        }
        for d in &self.extra_dots {
            let color = if d.color.is_empty() {
                let c = DOT_COLORS[color_idx % DOT_COLORS.len()];
                color_idx += 1;
                c.to_owned()
            } else {
                d.color.clone()
            };
            if let Some((lo, hi)) = d.whisker {
                draw_whisker(&mut svg, d.x, lo.get(), hi.get(), &color);
            }
            draw_dot(
                &mut svg,
                &d.label,
                d.x,
                d.tps.get(),
                &color,
                d.hollow,
                &mut legend_y,
            );
        }

        Some(svg.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrm_core::{ids, machines, Bytes, Flops, Work, WorkflowCharacterization};

    fn sample_model() -> RooflineModel {
        let wf = WorkflowCharacterization::builder("demo")
            .total_tasks(2.0)
            .parallel_tasks(1.0)
            .nodes_per_task(64)
            .makespan(Seconds::secs(4184.86))
            .node_volume(ids::COMPUTE, Work::Flops(Flops::pflops(4390.0) / 64.0))
            .system_volume(ids::FILE_SYSTEM, Bytes::gb(70.0))
            .target_makespan(Seconds::secs(3600.0))
            .target_throughput(TasksPerSec(1e-3))
            .build()
            .unwrap();
        RooflineModel::build(&machines::perlmutter_gpu(), &wf).unwrap()
    }

    #[test]
    fn renders_a_complete_figure() {
        let svg = RooflinePlot::new("BGW on PM-GPU")
            .model(&sample_model())
            .render_svg()
            .unwrap();
        assert!(svg.contains("BGW on PM-GPU"));
        assert!(svg.contains("Number of Parallel Tasks"));
        assert!(svg.contains("Throughput [tasks/s]"));
        assert!(svg.contains("System parallelism @ 28 tasks"));
        assert!(svg.contains("GPU FLOPS"));
        assert!(svg.contains("File System"));
        assert!(svg.contains("target throughput"));
        assert!(svg.contains("target makespan"));
        assert!(svg.contains("demo")); // legend entry for the dot
        assert!(svg.ends_with("</svg>\n"));
    }

    #[test]
    fn no_models_renders_nothing() {
        assert!(RooflinePlot::new("empty").render_svg().is_none());
    }

    #[test]
    fn extra_dots_and_options() {
        let svg = RooflinePlot::new("multi")
            .model(&sample_model())
            .dot(ExtraDot {
                label: "projected".into(),
                x: 1.0,
                tps: TasksPerSec(0.01),
                color: String::new(),
                hollow: true,
                whisker: None,
            })
            .dot(ExtraDot {
                label: "fixed-color".into(),
                x: 2.0,
                tps: TasksPerSec(0.02),
                color: "#123456".into(),
                hollow: false,
                whisker: Some((TasksPerSec(0.015), TasksPerSec(0.025))),
            })
            .targets(false)
            .size(500.0, 400.0)
            .render_svg()
            .unwrap();
        assert!(svg.contains("projected"));
        assert!(svg.contains("#123456"));
        assert!(!svg.contains("target throughput"));
        assert!(svg.contains("width=\"500\""));
    }

    #[test]
    fn primary_whisker_extends_the_domain_and_draws_caps() {
        let model = sample_model();
        let base = RooflinePlot::new("whiskered")
            .model(&model)
            .render_svg()
            .unwrap();
        let dot = model.dot.as_ref().expect("model dot");
        let svg = RooflinePlot::new("whiskered")
            .model(&model)
            .whisker(
                TasksPerSec(dot.tps.get() * 0.5),
                TasksPerSec(dot.tps.get() * 2.0),
            )
            .render_svg()
            .unwrap();
        assert_ne!(base, svg, "whisker left no mark");
        // Whisker stem + two caps on top of the base figure's lines.
        assert_eq!(
            svg.matches("<line").count(),
            base.matches("<line").count() + 3,
        );
    }

    #[test]
    fn overlaying_two_models_draws_two_dots() {
        let m1 = sample_model();
        let mut wf = m1.workflow.clone();
        wf.name = "bad day".into();
        wf.makespan = Some(Seconds::secs(20_000.0));
        let m2 = RooflineModel::build(&machines::perlmutter_gpu(), &wf).unwrap();
        let svg = RooflinePlot::new("overlay")
            .model(&m1)
            .model(&m2)
            .render_svg()
            .unwrap();
        assert!(svg.contains("demo"));
        assert!(svg.contains("bad day"));
    }
}

#[cfg(test)]
mod zone_tests {
    use super::*;
    use wrm_core::{ids, machines, Seconds, WorkflowCharacterization};

    #[test]
    fn zone_shading_renders_four_bands() {
        let wf = WorkflowCharacterization::builder("z")
            .total_tasks(8.0)
            .parallel_tasks(8.0)
            .nodes_per_task(64)
            .makespan(Seconds::secs(800.0))
            .node_volume(
                ids::COMPUTE,
                wrm_core::Work::Flops(wrm_core::Flops::pflops(20.0)),
            )
            .target_makespan(Seconds::secs(1000.0))
            .target_throughput(TasksPerSec(0.05))
            .build()
            .unwrap();
        let model = RooflineModel::build(&machines::perlmutter_gpu(), &wf).unwrap();
        let svg = RooflinePlot::new("zones")
            .model(&model)
            .zones(true)
            .render_svg()
            .unwrap();
        for color in ["#2e7d32", "#f9a825", "#ef6c00", "#c62828"] {
            assert!(svg.contains(color), "missing zone color {color}");
        }
        // Without both targets, no zone polygons are emitted.
        let mut no_targets = wf.clone();
        no_targets.targets = wrm_core::TargetSpec::NONE;
        let m2 = RooflineModel::build(&machines::perlmutter_gpu(), &no_targets).unwrap();
        let svg2 = RooflinePlot::new("no-zones")
            .model(&m2)
            .zones(true)
            .render_svg()
            .unwrap();
        assert!(!svg2.contains("#f9a825"));
    }
}
