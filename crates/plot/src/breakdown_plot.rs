//! SVG stacked-bar time breakdowns (paper Fig. 5b and Fig. 10b).

use crate::svg::{Anchor, Svg};
use wrm_trace::TimeBreakdown;

const STACK_COLORS: [&str; 8] = [
    "#1565c0", "#ef6c00", "#2e7d32", "#6a1b9a", "#c62828", "#00838f", "#f9a825", "#4e342e",
];

/// Renders vertical stacked bars, one per breakdown, with a shared time
/// axis and a category legend.
pub fn render_svg(title: &str, breakdowns: &[TimeBreakdown], width: f64, height: f64) -> String {
    let mut svg = Svg::new(width, height);
    svg.text(
        width / 2.0,
        22.0,
        title,
        15.0,
        "#111111",
        Anchor::Middle,
        None,
    );

    if breakdowns.is_empty() {
        svg.text(
            width / 2.0,
            height / 2.0,
            "(no data)",
            13.0,
            "#666666",
            Anchor::Middle,
            None,
        );
        return svg.finish();
    }

    // Stable category order across bars.
    let mut cats: Vec<String> = Vec::new();
    for b in breakdowns {
        for (c, _) in &b.categories {
            if !cats.contains(c) {
                cats.push(c.clone());
            }
        }
    }

    let max_total = breakdowns
        .iter()
        .map(TimeBreakdown::total)
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let ml = 64.0;
    let mb = 46.0;
    let mt = 40.0;
    let legend_w = 150.0;
    let plot_w = width - ml - legend_w;
    let plot_h = height - mt - mb;
    let bar_w = (plot_w / breakdowns.len() as f64 * 0.55).min(90.0);

    // y-axis with 5 linear ticks.
    for i in 0..=5 {
        let v = max_total * i as f64 / 5.0;
        let y = height - mb - plot_h * i as f64 / 5.0;
        svg.line(ml, y, width - legend_w, y, "#e0e0e0", 1.0, None);
        svg.text(
            ml - 6.0,
            y + 4.0,
            &format!("{v:.0}"),
            10.5,
            "#444444",
            Anchor::End,
            None,
        );
    }
    svg.text(
        18.0,
        mt + plot_h / 2.0,
        "Time (s)",
        12.0,
        "#111111",
        Anchor::Middle,
        Some(-90.0),
    );
    svg.line(
        ml,
        height - mb,
        width - legend_w,
        height - mb,
        "#222222",
        1.5,
        None,
    );

    for (bi, b) in breakdowns.iter().enumerate() {
        let cx = ml + plot_w * (bi as f64 + 0.5) / breakdowns.len() as f64;
        let mut y = height - mb;
        for (ci, cat) in cats.iter().enumerate() {
            let t = b.get(cat);
            if t <= 0.0 {
                continue;
            }
            let h = t / max_total * plot_h;
            y -= h;
            svg.rect(
                cx - bar_w / 2.0,
                y,
                bar_w,
                h,
                STACK_COLORS[ci % STACK_COLORS.len()],
                Some("#ffffff"),
            );
        }
        svg.text(
            cx,
            height - mb + 16.0,
            &b.label,
            12.0,
            "#111111",
            Anchor::Middle,
            None,
        );
        svg.text(
            cx,
            y - 6.0,
            &format!("{:.0} s", b.total()),
            11.0,
            "#333333",
            Anchor::Middle,
            None,
        );
    }

    // Legend.
    let lx = width - legend_w + 10.0;
    let mut ly = mt + 6.0;
    for (ci, cat) in cats.iter().enumerate() {
        svg.rect(
            lx,
            ly - 9.0,
            12.0,
            12.0,
            STACK_COLORS[ci % STACK_COLORS.len()],
            None,
        );
        svg.text(
            lx + 18.0,
            ly + 1.0,
            cat,
            11.0,
            "#111111",
            Anchor::Start,
            None,
        );
        ly += 18.0;
    }
    svg.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_fig10b_shape() {
        let bars = vec![
            TimeBreakdown {
                label: "RCI".into(),
                categories: vec![
                    ("bash".into(), 295.0),
                    ("python".into(), 209.0),
                    ("load_data".into(), 30.0),
                    ("application".into(), 14.0),
                    ("model_and_search".into(), 5.0),
                ],
            },
            TimeBreakdown {
                label: "Spawn".into(),
                categories: vec![
                    ("python".into(), 209.0),
                    ("load_data".into(), 0.02),
                    ("application".into(), 14.0),
                    ("model_and_search".into(), 5.0),
                ],
            },
        ];
        let svg = render_svg("GPTune time breakdown", &bars, 640.0, 420.0);
        assert!(svg.contains("GPTune time breakdown"));
        assert!(svg.contains("RCI"));
        assert!(svg.contains("Spawn"));
        assert!(svg.contains("bash"));
        assert!(svg.contains("Time (s)"));
        assert!(svg.contains("553 s"));
        assert!(svg.contains("228 s"));
    }

    #[test]
    fn empty_input() {
        let svg = render_svg("t", &[], 300.0, 200.0);
        assert!(svg.contains("(no data)"));
    }

    #[test]
    fn zero_categories_are_skipped() {
        let bars = vec![TimeBreakdown {
            label: "only".into(),
            categories: vec![("a".into(), 0.0), ("b".into(), 10.0)],
        }];
        let svg = render_svg("t", &bars, 300.0, 200.0);
        // Exactly one stacked rect (plus the background + legend swatches).
        assert!(svg.contains("only"));
        assert!(svg.contains("10 s"));
    }
}
