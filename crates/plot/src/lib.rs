//! # wrm-plot — rendering for the Workflow Roofline Model
//!
//! Self-contained SVG and ASCII backends (no plotting dependencies) for
//! every visual in the paper:
//!
//! * [`RooflinePlot`] — the roofline figure itself (Figs. 1, 5a, 6,
//!   7a–c, 8, 10a): log-log axes, diagonal node ceilings, horizontal
//!   system ceilings, the parallelism wall with the unattainable region
//!   shaded, target lines, and measured/projected dots;
//! * [`gantt_plot`] — Gantt charts with the critical path highlighted
//!   (Fig. 7d);
//! * [`breakdown_plot`] — stacked time-breakdown bars (Figs. 5b, 10b);
//! * [`skeleton`] — workflow-skeleton diagrams (Figs. 4, 9);
//! * [`profile_plot`] — parallelism-profile step charts (tasks/nodes
//!   over time), exposing pipelining quality the roofline's y-axis
//!   hides;
//! * [`ascii`] — terminal renderings of rooflines, Gantt charts and
//!   breakdowns for quick inspection.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ascii;
pub mod breakdown_plot;
pub mod gantt_plot;
pub mod html;
pub mod profile_plot;
pub mod roofline_plot;
pub mod scale;
pub mod skeleton;
pub mod svg;

pub use html::Section;
pub use roofline_plot::{ExtraDot, RooflinePlot};
pub use svg::{Anchor, Svg};
