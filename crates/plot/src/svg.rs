//! A minimal, dependency-free SVG document builder.
//!
//! Only what the plot renderers need: primitive shapes, text, grouping,
//! dashed strokes, and correct XML escaping. Coordinates are in user
//! units (pixels).

use std::fmt::Write as _;

/// Escapes a string for use inside XML text or attribute values.
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

fn fmt_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e9 {
        format!("{}", v as i64)
    } else {
        let s = format!("{v:.3}");
        s.trim_end_matches('0').trim_end_matches('.').to_owned()
    }
}

/// Text anchor for [`Svg::text`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Anchor {
    /// Left-aligned.
    Start,
    /// Centered.
    Middle,
    /// Right-aligned.
    End,
}

impl Anchor {
    fn as_str(self) -> &'static str {
        match self {
            Anchor::Start => "start",
            Anchor::Middle => "middle",
            Anchor::End => "end",
        }
    }
}

/// An SVG document under construction.
#[derive(Debug, Clone)]
pub struct Svg {
    width: f64,
    height: f64,
    body: String,
}

impl Svg {
    /// Creates a document of the given pixel size with a white
    /// background.
    pub fn new(width: f64, height: f64) -> Self {
        let mut svg = Svg {
            width,
            height,
            body: String::new(),
        };
        svg.rect(0.0, 0.0, width, height, "#ffffff", None);
        svg
    }

    /// Document width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Document height.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// A filled rectangle with an optional stroke color.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str, stroke: Option<&str>) {
        let stroke_attr = match stroke {
            Some(s) => format!(" stroke=\"{}\" stroke-width=\"1\"", escape(s)),
            None => String::new(),
        };
        writeln!(
            self.body,
            "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"{}\"{}/>",
            fmt_num(x),
            fmt_num(y),
            fmt_num(w),
            fmt_num(h),
            escape(fill),
            stroke_attr
        )
        .expect("write to string");
    }

    /// A line with stroke width and optional dash pattern.
    #[allow(clippy::too_many_arguments)]
    pub fn line(
        &mut self,
        x1: f64,
        y1: f64,
        x2: f64,
        y2: f64,
        stroke: &str,
        width: f64,
        dash: Option<&str>,
    ) {
        let dash_attr = match dash {
            Some(d) => format!(" stroke-dasharray=\"{}\"", escape(d)),
            None => String::new(),
        };
        writeln!(
            self.body,
            "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"{}\" stroke-width=\"{}\"{}/>",
            fmt_num(x1),
            fmt_num(y1),
            fmt_num(x2),
            fmt_num(y2),
            escape(stroke),
            fmt_num(width),
            dash_attr
        )
        .expect("write to string");
    }

    /// A filled circle with optional stroke.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str, stroke: Option<&str>) {
        let stroke_attr = match stroke {
            Some(s) => format!(" stroke=\"{}\" stroke-width=\"1.5\"", escape(s)),
            None => String::new(),
        };
        writeln!(
            self.body,
            "<circle cx=\"{}\" cy=\"{}\" r=\"{}\" fill=\"{}\"{}/>",
            fmt_num(cx),
            fmt_num(cy),
            fmt_num(r),
            escape(fill),
            stroke_attr
        )
        .expect("write to string");
    }

    /// A text label; `rotate` (degrees) pivots around the anchor point.
    #[allow(clippy::too_many_arguments)]
    pub fn text(
        &mut self,
        x: f64,
        y: f64,
        content: &str,
        size: f64,
        fill: &str,
        anchor: Anchor,
        rotate: Option<f64>,
    ) {
        let transform = match rotate {
            Some(deg) => format!(
                " transform=\"rotate({} {} {})\"",
                fmt_num(deg),
                fmt_num(x),
                fmt_num(y)
            ),
            None => String::new(),
        };
        writeln!(
            self.body,
            "<text x=\"{}\" y=\"{}\" font-size=\"{}\" font-family=\"Helvetica, Arial, sans-serif\" \
             fill=\"{}\" text-anchor=\"{}\"{}>{}</text>",
            fmt_num(x),
            fmt_num(y),
            fmt_num(size),
            escape(fill),
            anchor.as_str(),
            transform,
            escape(content)
        )
        .expect("write to string");
    }

    /// A polygon from points, with fill and opacity.
    pub fn polygon(&mut self, points: &[(f64, f64)], fill: &str, opacity: f64) {
        let pts: Vec<String> = points
            .iter()
            .map(|(x, y)| format!("{},{}", fmt_num(*x), fmt_num(*y)))
            .collect();
        writeln!(
            self.body,
            "<polygon points=\"{}\" fill=\"{}\" fill-opacity=\"{}\"/>",
            pts.join(" "),
            escape(fill),
            fmt_num(opacity)
        )
        .expect("write to string");
    }

    /// A polyline (open path) with stroke.
    pub fn polyline(&mut self, points: &[(f64, f64)], stroke: &str, width: f64) {
        let pts: Vec<String> = points
            .iter()
            .map(|(x, y)| format!("{},{}", fmt_num(*x), fmt_num(*y)))
            .collect();
        writeln!(
            self.body,
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{}\" stroke-width=\"{}\"/>",
            pts.join(" "),
            escape(stroke),
            fmt_num(width)
        )
        .expect("write to string");
    }

    /// Finalizes the document.
    pub fn finish(self) -> String {
        format!(
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n\
             <svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" \
             viewBox=\"0 0 {} {}\">\n{}</svg>\n",
            fmt_num(self.width),
            fmt_num(self.height),
            fmt_num(self.width),
            fmt_num(self.height),
            self.body
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(escape("a<b>&\"c'"), "a&lt;b&gt;&amp;&quot;c&apos;");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn document_structure() {
        let mut svg = Svg::new(640.0, 480.0);
        svg.line(0.0, 0.0, 10.0, 10.0, "#000", 1.0, Some("4 2"));
        svg.circle(5.0, 5.0, 3.0, "red", Some("black"));
        svg.text(1.0, 2.0, "x < y", 12.0, "#333", Anchor::Middle, Some(-90.0));
        svg.polygon(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0)], "grey", 0.5);
        svg.polyline(&[(0.0, 0.0), (2.0, 3.0)], "blue", 2.0);
        let out = svg.finish();
        assert!(out.starts_with("<?xml"));
        assert!(out.contains("<svg xmlns"));
        assert!(out.contains("stroke-dasharray=\"4 2\""));
        assert!(out.contains("x &lt; y"));
        assert!(out.contains("rotate(-90 1 2)"));
        assert!(out.contains("<polygon"));
        assert!(out.contains("<polyline"));
        assert!(out.trim_end().ends_with("</svg>"));
        assert_eq!(out.matches("<svg").count(), 1);
    }

    #[test]
    fn numbers_are_compact() {
        let mut svg = Svg::new(100.0, 100.0);
        svg.line(1.0, 2.5, 2.3456, 4.0, "#000", 1.0, None);
        let out = svg.finish();
        assert!(out.contains("x1=\"1\""));
        assert!(out.contains("y1=\"2.5\""));
        assert!(out.contains("x2=\"2.346\""));
    }

    #[test]
    fn dimensions() {
        let svg = Svg::new(320.0, 200.0);
        assert_eq!(svg.width(), 320.0);
        assert_eq!(svg.height(), 200.0);
        let out = svg.finish();
        assert!(out.contains("viewBox=\"0 0 320 200\""));
    }
}
