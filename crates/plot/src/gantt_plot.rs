//! SVG Gantt charts (paper Fig. 7d): task bars over time with the
//! critical path highlighted.

use crate::svg::{Anchor, Svg};
use wrm_dag::GanttChart;

/// Renders one or more Gantt charts stacked vertically with a shared
/// style (the paper shows 64-node and 1024-node BGW together).
pub fn render_svg(charts: &[&GanttChart], width: f64) -> String {
    let row_h = 22.0;
    let gap = 40.0;
    let ml = 120.0;
    let mr = 30.0;
    let mt = 30.0;

    let total_rows: usize = charts.iter().map(|c| c.rows.len()).sum();
    let height = mt + total_rows as f64 * row_h + charts.len() as f64 * gap + 20.0;
    let mut svg = Svg::new(width, height);

    let mut y = mt;
    for chart in charts {
        svg.text(
            ml,
            y - 8.0,
            &format!("{}  (makespan {:.1} s)", chart.name, chart.makespan),
            13.0,
            "#111111",
            Anchor::Start,
            None,
        );
        let span = chart.makespan.max(1e-9);
        let plot_w = width - ml - mr;
        for row in &chart.rows {
            let x0 = ml + row.start / span * plot_w;
            let x1 = ml + row.end / span * plot_w;
            let fill = if row.on_critical_path {
                "#1565c0"
            } else {
                "#90a4ae"
            };
            svg.rect(
                x0,
                y + 3.0,
                (x1 - x0).max(1.0),
                row_h - 8.0,
                fill,
                Some("#37474f"),
            );
            svg.text(
                ml - 6.0,
                y + row_h / 2.0 + 3.0,
                &row.name,
                11.0,
                "#111111",
                Anchor::End,
                None,
            );
            svg.text(
                (x1 + 4.0).min(width - mr),
                y + row_h / 2.0 + 3.0,
                &format!("{:.0}s", row.end - row.start),
                10.0,
                "#424242",
                Anchor::Start,
                None,
            );
            y += row_h;
        }
        // Critical-path connector line across the chart.
        let cp_rows: Vec<&wrm_dag::GanttRow> =
            chart.rows.iter().filter(|r| r.on_critical_path).collect();
        if cp_rows.len() > 1 {
            let base = y - chart.rows.len() as f64 * row_h;
            let pts: Vec<(f64, f64)> = chart
                .rows
                .iter()
                .enumerate()
                .filter(|(_, r)| r.on_critical_path)
                .map(|(i, r)| {
                    (
                        ml + (r.start + r.end) / 2.0 / span * plot_w,
                        base + i as f64 * row_h + row_h / 2.0,
                    )
                })
                .collect();
            svg.polyline(&pts, "#0d47a1", 2.0);
        }
        y += gap;
    }
    svg.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrm_dag::{list_schedule, Dag, GanttChart, Policy};

    fn bgw_chart(te: f64, ts: f64) -> GanttChart {
        let mut d = Dag::new("BGW");
        let e = d.add_task("Epsilon", 64, te).unwrap();
        let s = d.add_task("Sigma", 64, ts).unwrap();
        d.add_dep(e, s).unwrap();
        let sched = list_schedule(&d, 1792, Policy::Fifo).unwrap();
        GanttChart::build(&d, &sched).unwrap()
    }

    #[test]
    fn renders_two_charts() {
        let a = bgw_chart(1240.0, 2944.86);
        let b = bgw_chart(180.0, 224.74);
        let svg = render_svg(&[&a, &b], 800.0);
        assert_eq!(svg.matches("BGW  (makespan").count(), 2);
        assert!(svg.contains("Epsilon"));
        assert!(svg.contains("Sigma"));
        assert!(svg.contains("#1565c0")); // critical-path fill
        assert!(svg.contains("<polyline")); // connector
    }

    #[test]
    fn empty_chart_still_renders() {
        let d = Dag::new("empty");
        let sched = list_schedule(&d, 4, Policy::Fifo).unwrap();
        let chart = GanttChart::build(&d, &sched).unwrap();
        let svg = render_svg(&[&chart], 400.0);
        assert!(svg.contains("empty"));
        assert!(svg.ends_with("</svg>\n"));
    }
}
