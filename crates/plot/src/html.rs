//! Self-contained HTML reports: the analysis text plus every figure
//! (roofline, Gantt, breakdown, profile) inlined as SVG in one file a
//! browser can open with no server and no assets.

use crate::svg::escape;
use std::fmt::Write as _;

/// One report section.
#[derive(Debug, Clone)]
pub enum Section {
    /// A heading.
    Heading(String),
    /// Preformatted text (reports, tables, ASCII charts).
    Pre(String),
    /// Prose.
    Text(String),
    /// An inline SVG document (embedded as-is, XML prolog stripped).
    Svg(String),
}

/// Builds a complete HTML document from sections.
pub fn render(title: &str, sections: &[Section]) -> String {
    let mut body = String::new();
    for section in sections {
        match section {
            Section::Heading(h) => {
                writeln!(body, "<h2>{}</h2>", escape(h)).expect("write to string");
            }
            Section::Pre(text) => {
                writeln!(body, "<pre>{}</pre>", escape(text)).expect("write to string");
            }
            Section::Text(text) => {
                writeln!(body, "<p>{}</p>", escape(text)).expect("write to string");
            }
            Section::Svg(svg) => {
                // Strip the XML prolog so the SVG embeds inline.
                let inline = svg
                    .lines()
                    .skip_while(|l| l.starts_with("<?xml"))
                    .collect::<Vec<_>>()
                    .join("\n");
                writeln!(body, "<div class=\"figure\">{inline}</div>").expect("write to string");
            }
        }
    }
    format!(
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <title>{title}</title>\n<style>\n\
         body {{ font-family: Helvetica, Arial, sans-serif; max-width: 900px; \
         margin: 2em auto; color: #1a1a1a; }}\n\
         pre {{ background: #f6f8fa; padding: 12px; overflow-x: auto; \
         border-radius: 6px; font-size: 13px; }}\n\
         h1 {{ border-bottom: 2px solid #1565c0; padding-bottom: 6px; }}\n\
         h2 {{ color: #1565c0; margin-top: 1.6em; }}\n\
         .figure {{ margin: 1em 0; }}\n\
         </style>\n</head>\n<body>\n<h1>{escaped}</h1>\n{body}</body>\n</html>\n",
        title = escape(title),
        escaped = escape(title),
        body = body
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svg::Svg;

    #[test]
    fn document_assembles_all_section_kinds() {
        let svg = Svg::new(100.0, 50.0).finish();
        let html = render(
            "LCLS <analysis>",
            &[
                Section::Heading("Roofline".into()),
                Section::Text("The dot & the ceiling.".into()),
                Section::Svg(svg),
                Section::Pre("col1  col2\n1     2".into()),
            ],
        );
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("LCLS &lt;analysis&gt;"));
        assert!(html.contains("<h2>Roofline</h2>"));
        assert!(html.contains("The dot &amp; the ceiling."));
        // SVG is inlined without its XML prolog.
        assert!(html.contains("<svg xmlns"));
        assert!(!html.contains("<?xml"));
        assert!(html.contains("<pre>col1  col2"));
        assert!(html.trim_end().ends_with("</html>"));
    }

    #[test]
    fn empty_report() {
        let html = render("empty", &[]);
        assert!(html.contains("<h1>empty</h1>"));
    }
}
