//! SVG step charts of parallelism profiles: concurrent tasks (and busy
//! nodes) over time. Makes the roofline's hidden dimension — pipelining
//! quality over the makespan — visible (the paper's §V limitation).

use crate::svg::{Anchor, Svg};
use wrm_dag::ParallelismProfile;

/// Renders the profile as two stacked step charts (tasks, nodes).
pub fn render_svg(title: &str, profile: &ParallelismProfile, width: f64) -> String {
    let height = 380.0;
    let mut svg = Svg::new(width, height);
    svg.text(
        width / 2.0,
        22.0,
        title,
        15.0,
        "#111111",
        Anchor::Middle,
        None,
    );

    if profile.steps.is_empty() {
        svg.text(
            width / 2.0,
            height / 2.0,
            "(empty profile)",
            13.0,
            "#666666",
            Anchor::Middle,
            None,
        );
        return svg.finish();
    }

    let t_end = profile.steps.last().expect("non-empty").end;
    let ml = 64.0;
    let mr = 24.0;
    let panel_h = 130.0;
    let gap = 40.0;
    let plot_w = width - ml - mr;

    type StepValue = Box<dyn Fn(&wrm_dag::ProfileStep) -> f64>;
    let panels: [(&str, StepValue, f64, &str); 2] = [
        (
            "concurrent tasks",
            Box::new(|s| s.tasks as f64),
            profile.peak_tasks() as f64,
            "#1565c0",
        ),
        (
            "busy nodes",
            Box::new(|s| s.nodes as f64),
            profile.peak_nodes() as f64,
            "#ef6c00",
        ),
    ];

    for (pi, (label, value, peak, color)) in panels.iter().enumerate() {
        let top = 40.0 + pi as f64 * (panel_h + gap);
        let bottom = top + panel_h;
        let peak = peak.max(1.0);
        // Axes.
        svg.line(ml, bottom, width - mr, bottom, "#222222", 1.2, None);
        svg.line(ml, top, ml, bottom, "#222222", 1.2, None);
        svg.text(
            ml - 8.0,
            top + 4.0,
            &format!("{peak:.0}"),
            10.5,
            "#444444",
            Anchor::End,
            None,
        );
        svg.text(
            ml - 8.0,
            bottom + 4.0,
            "0",
            10.5,
            "#444444",
            Anchor::End,
            None,
        );
        svg.text(
            width - mr,
            bottom + 16.0,
            &format!("{t_end:.0} s"),
            10.5,
            "#444444",
            Anchor::End,
            None,
        );
        svg.text(
            ml + 6.0,
            top - 6.0,
            label,
            12.0,
            "#111111",
            Anchor::Start,
            None,
        );

        // Step polyline + fill.
        let mut pts: Vec<(f64, f64)> = Vec::with_capacity(profile.steps.len() * 2 + 2);
        let y_of = |v: f64| bottom - v / peak * (panel_h - 8.0);
        pts.push((ml, bottom));
        for step in &profile.steps {
            let x0 = ml + step.start / t_end * plot_w;
            let x1 = ml + step.end / t_end * plot_w;
            let y = y_of(value(step));
            pts.push((x0, y));
            pts.push((x1, y));
        }
        pts.push((ml + plot_w, bottom));
        svg.polygon(&pts, color, 0.15);
        svg.polyline(&pts[1..pts.len() - 1], color, 2.0);
    }
    svg.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrm_dag::{list_schedule, Dag, Policy};

    #[test]
    fn renders_profile_panels() {
        let mut d = Dag::new("p");
        let merge = d.add_task("merge", 1, 20.0).unwrap();
        for i in 0..5 {
            let a = d.add_task(format!("a{i}"), 32, 1000.0).unwrap();
            d.add_dep(a, merge).unwrap();
        }
        let sched = list_schedule(&d, 200, Policy::Fifo).unwrap();
        let profile = ParallelismProfile::from_schedule(&sched);
        let svg = render_svg("LCLS parallelism", &profile, 720.0);
        assert!(svg.contains("concurrent tasks"));
        assert!(svg.contains("busy nodes"));
        assert!(svg.contains("1020 s"));
        assert!(svg.contains("<polyline"));
    }

    #[test]
    fn empty_profile_renders_placeholder() {
        let profile = ParallelismProfile { steps: Vec::new() };
        let svg = render_svg("empty", &profile, 400.0);
        assert!(svg.contains("(empty profile)"));
    }
}
