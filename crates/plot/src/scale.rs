//! Axis scales and tick generation for log-log roofline plots.

/// Maps a data range onto a pixel range, logarithmically (base 10).
#[derive(Debug, Clone, Copy)]
pub struct LogScale {
    log_min: f64,
    log_max: f64,
    px_min: f64,
    px_max: f64,
}

impl LogScale {
    /// Creates a scale; `min`/`max` must be positive with `min < max`.
    pub fn new(min: f64, max: f64, px_min: f64, px_max: f64) -> Self {
        assert!(
            min > 0.0 && max > min && min.is_finite() && max.is_finite(),
            "log scale needs 0 < min < max, got {min}..{max}"
        );
        LogScale {
            log_min: min.log10(),
            log_max: max.log10(),
            px_min,
            px_max,
        }
    }

    /// Data value -> pixel coordinate (values are clamped to the domain).
    pub fn px(&self, value: f64) -> f64 {
        let lv = value.max(1e-300).log10().clamp(self.log_min, self.log_max);
        let t = (lv - self.log_min) / (self.log_max - self.log_min);
        self.px_min + t * (self.px_max - self.px_min)
    }

    /// True when the value lies inside the domain (no clamping needed).
    pub fn contains(&self, value: f64) -> bool {
        if value <= 0.0 {
            return false;
        }
        let lv = value.log10();
        lv >= self.log_min - 1e-12 && lv <= self.log_max + 1e-12
    }

    /// Domain minimum.
    pub fn min(&self) -> f64 {
        10f64.powf(self.log_min)
    }

    /// Domain maximum.
    pub fn max(&self) -> f64 {
        10f64.powf(self.log_max)
    }

    /// Decade tick values (10^k) inside the domain.
    pub fn decade_ticks(&self) -> Vec<f64> {
        let lo = self.log_min.ceil() as i32;
        let hi = self.log_max.floor() as i32;
        (lo..=hi).map(|k| 10f64.powi(k)).collect()
    }
}

/// Formats a tick value compactly: powers of ten as `10^k` (or plain
/// numbers between 0.01 and 1000).
pub fn tick_label(value: f64) -> String {
    let k = value.log10();
    if (k - k.round()).abs() < 1e-9 {
        let k = k.round() as i32;
        match k {
            -2 => "0.01".into(),
            -1 => "0.1".into(),
            0 => "1".into(),
            1 => "10".into(),
            2 => "100".into(),
            3 => "1000".into(),
            _ => format!("1e{k}"),
        }
    } else if (0.01..1000.0).contains(&value) {
        format!("{value:.2}")
    } else {
        format!("{value:.1e}")
    }
}

/// Picks a padded log domain that covers every value in `values`
/// (ignoring non-positive/non-finite entries), expanded to full decades.
/// Falls back to `(0.1, 10)` when no usable value exists.
pub fn log_domain(values: impl IntoIterator<Item = f64>) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in values {
        if v.is_finite() && v > 0.0 {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() {
        return (0.1, 10.0);
    }
    let lo = 10f64.powf((lo.log10() - 0.15).floor());
    let mut hi = 10f64.powf((hi.log10() + 0.15).ceil());
    if hi <= lo {
        hi = lo * 10.0;
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_is_logarithmic() {
        let s = LogScale::new(1.0, 100.0, 0.0, 200.0);
        assert!((s.px(1.0) - 0.0).abs() < 1e-9);
        assert!((s.px(10.0) - 100.0).abs() < 1e-9);
        assert!((s.px(100.0) - 200.0).abs() < 1e-9);
        // Inverted pixel ranges work (SVG y grows downward).
        let s = LogScale::new(1.0, 100.0, 200.0, 0.0);
        assert!((s.px(10.0) - 100.0).abs() < 1e-9);
        assert!((s.px(100.0) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn clamping_and_containment() {
        let s = LogScale::new(1.0, 100.0, 0.0, 200.0);
        assert_eq!(s.px(0.001), 0.0);
        assert_eq!(s.px(1e9), 200.0);
        assert!(s.contains(5.0));
        assert!(!s.contains(0.5));
        assert!(!s.contains(-1.0));
        assert!(!s.contains(500.0));
        assert!((s.min() - 1.0).abs() < 1e-12);
        assert!((s.max() - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "log scale needs")]
    fn rejects_bad_domain() {
        LogScale::new(0.0, 10.0, 0.0, 1.0);
    }

    #[test]
    fn ticks_and_labels() {
        let s = LogScale::new(0.5, 2000.0, 0.0, 1.0);
        assert_eq!(s.decade_ticks(), vec![1.0, 10.0, 100.0, 1000.0]);
        assert_eq!(tick_label(10.0), "10");
        assert_eq!(tick_label(0.01), "0.01");
        assert_eq!(tick_label(1e6), "1e6");
        assert_eq!(tick_label(1e-4), "1e-4");
        assert_eq!(tick_label(25.0), "25.00");
        assert_eq!(tick_label(1.5e4), "1.5e4");
    }

    #[test]
    fn domain_padding() {
        let (lo, hi) = log_domain([0.005, 2.0, 30.0]);
        assert!(lo <= 0.005);
        assert!(hi >= 30.0);
        // Full-decade edges.
        assert!((lo.log10() - lo.log10().round()).abs() < 1e-9);
        assert!((hi.log10() - hi.log10().round()).abs() < 1e-9);
        // Degenerate inputs.
        assert_eq!(log_domain([f64::NAN, -3.0]), (0.1, 10.0));
        let (lo, hi) = log_domain([5.0]);
        assert!(lo < 5.0 && hi > 5.0);
    }
}
