//! SVG workflow-skeleton diagrams (paper Fig. 4 and Fig. 9): tasks as
//! boxes arranged by level, dependency edges as arrows.

use crate::svg::{Anchor, Svg};
use wrm_dag::Dag;

/// Renders the skeleton of `dag`, one column of boxes per level.
/// Returns `None` when the DAG is cyclic.
pub fn render_svg(dag: &Dag, width: f64) -> Option<String> {
    let groups = dag.level_groups().ok()?;
    let levels = groups.len().max(1);
    let max_width = groups.iter().map(Vec::len).max().unwrap_or(1).max(1);

    let box_w = 120.0;
    let box_h = 34.0;
    let h_gap = 70.0;
    let v_gap = 16.0;
    let mt = 46.0;
    let height = mt + max_width as f64 * (box_h + v_gap) + 30.0;
    let mut svg = Svg::new(width, height);
    svg.text(
        width / 2.0,
        24.0,
        &dag.name,
        15.0,
        "#111111",
        Anchor::Middle,
        None,
    );

    // Positions per task.
    let mut pos = vec![(0.0f64, 0.0f64); dag.len()];
    let total_w = levels as f64 * box_w + (levels as f64 - 1.0) * h_gap;
    let x0 = (width - total_w) / 2.0;
    for (li, group) in groups.iter().enumerate() {
        let x = x0 + li as f64 * (box_w + h_gap);
        let group_h = group.len() as f64 * (box_h + v_gap) - v_gap;
        let y0 = mt + (height - mt - 30.0 - group_h) / 2.0;
        for (ti, &id) in group.iter().enumerate() {
            let y = y0 + ti as f64 * (box_h + v_gap);
            pos[id.0] = (x, y);
        }
    }

    // Edges first (under the boxes).
    for id in dag.task_ids() {
        let (x1, y1) = pos[id.0];
        for &s in dag.successors(id) {
            let (x2, y2) = pos[s.0];
            svg.line(
                x1 + box_w,
                y1 + box_h / 2.0,
                x2,
                y2 + box_h / 2.0,
                "#78909c",
                1.5,
                None,
            );
            // Arrowhead.
            svg.polygon(
                &[
                    (x2, y2 + box_h / 2.0),
                    (x2 - 8.0, y2 + box_h / 2.0 - 4.0),
                    (x2 - 8.0, y2 + box_h / 2.0 + 4.0),
                ],
                "#78909c",
                1.0,
            );
        }
    }

    // Boxes.
    for id in dag.task_ids() {
        let (x, y) = pos[id.0];
        let t = dag.task(id);
        svg.rect(x, y, box_w, box_h, "#e3f2fd", Some("#1565c0"));
        svg.text(
            x + box_w / 2.0,
            y + box_h / 2.0 + 1.0,
            &t.name,
            11.0,
            "#0d47a1",
            Anchor::Middle,
            None,
        );
        svg.text(
            x + box_w / 2.0,
            y + box_h / 2.0 + 12.0,
            &format!("{} nodes", t.nodes),
            8.5,
            "#546e7a",
            Anchor::Middle,
            None,
        );
    }

    // Level captions.
    for li in 0..levels {
        let x = x0 + li as f64 * (box_w + h_gap) + box_w / 2.0;
        svg.text(
            x,
            height - 10.0,
            &format!("level {li}"),
            11.0,
            "#444444",
            Anchor::Middle,
            None,
        );
    }

    Some(svg.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcls_skeleton_renders() {
        let mut d = Dag::new("LCLS");
        let merge = d.add_task("merge", 1, 20.0).unwrap();
        for i in 0..5 {
            let a = d.add_task(format!("analyze[{i}]"), 32, 1000.0).unwrap();
            d.add_dep(a, merge).unwrap();
        }
        let svg = render_svg(&d, 700.0).unwrap();
        assert!(svg.contains("LCLS"));
        assert_eq!(svg.matches("analyze[").count(), 5);
        assert!(svg.contains("merge"));
        assert!(svg.contains("level 0"));
        assert!(svg.contains("level 1"));
        assert!(svg.contains("32 nodes"));
        // 5 dependency edges -> 5 arrowheads.
        assert_eq!(svg.matches("<polygon").count(), 5);
    }

    #[test]
    fn cyclic_dag_returns_none() {
        let mut d = Dag::new("c");
        let a = d.add_task("a", 1, 1.0).unwrap();
        let b = d.add_task("b", 1, 1.0).unwrap();
        d.add_dep(a, b).unwrap();
        d.add_dep(b, a).unwrap();
        assert!(render_svg(&d, 400.0).is_none());
    }

    #[test]
    fn empty_dag_renders_header_only() {
        let d = Dag::new("empty");
        let svg = render_svg(&d, 300.0).unwrap();
        assert!(svg.contains("empty"));
    }
}
