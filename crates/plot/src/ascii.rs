//! Terminal (ASCII) rendering: rooflines, Gantt charts and breakdowns
//! readable directly in a shell, for quick looks without an SVG viewer.

use wrm_core::{CeilingKind, RooflineModel};
use wrm_dag::GanttChart;

/// Renders a roofline as a `width x height` character grid (log-log).
///
/// Glyphs: `/` node ceilings, `=` system ceilings, `|` the parallelism
/// wall, `O` the workflow dot(s), `.` grid. The legend lists ceilings
/// with their labels.
pub fn roofline(model: &RooflineModel, width: usize, height: usize) -> String {
    let width = width.clamp(24, 200);
    let height = height.clamp(10, 80);
    let wall = model.parallelism_wall as f64;

    let mut ys: Vec<f64> = Vec::new();
    let mut xs: Vec<f64> = vec![0.5, wall * 2.0];
    for c in &model.ceilings {
        ys.push(c.tps_at(1.0).get());
        ys.push(c.tps_at(wall).get());
    }
    if let Some(d) = &model.dot {
        ys.push(d.tps.get());
        xs.push(d.x);
    }
    let (x_lo, x_hi) = crate::scale::log_domain(xs);
    let (y_lo, y_hi) = crate::scale::log_domain(ys);
    let lx = |x: f64| -> usize {
        let t = (x.log10() - x_lo.log10()) / (x_hi.log10() - x_lo.log10());
        ((t * (width - 1) as f64).round() as isize).clamp(0, width as isize - 1) as usize
    };
    let ly = |y: f64| -> usize {
        let t = (y.log10() - y_lo.log10()) / (y_hi.log10() - y_lo.log10());
        let row = ((1.0 - t) * (height - 1) as f64).round() as isize;
        row.clamp(0, height as isize - 1) as usize
    };

    let mut grid = vec![vec![' '; width]; height];

    // Ceilings.
    for c in &model.ceilings {
        let glyph = match c.kind {
            CeilingKind::Node => '/',
            CeilingKind::System => '=',
        };
        #[allow(clippy::needless_range_loop)] // col indexes a 2-D grid by row(y) first
        for col in 0..width {
            let t = col as f64 / (width - 1) as f64;
            let x = 10f64.powf(x_lo.log10() + t * (x_hi.log10() - x_lo.log10()));
            let y = c.tps_at(x).get();
            if (y_lo..=y_hi).contains(&y) {
                grid[ly(y)][col] = glyph;
            }
        }
    }

    // Wall.
    if wall >= x_lo && wall <= x_hi {
        let col = lx(wall);
        for row in grid.iter_mut() {
            if row[col] == ' ' {
                row[col] = '|';
            }
        }
    }

    // Dot.
    if let Some(d) = &model.dot {
        if d.tps.get() > 0.0 {
            grid[ly(d.tps.get().clamp(y_lo, y_hi))][lx(d.x.clamp(x_lo, x_hi))] = 'O';
        }
    }

    let mut out = String::new();
    out.push_str(&format!(
        "{} on {} (wall @ {} tasks)\n",
        model.workflow.name, model.machine_name, model.parallelism_wall
    ));
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{y_hi:>9.2e} ")
        } else if i == height - 1 {
            format!("{y_lo:>9.2e} ")
        } else {
            " ".repeat(10)
        };
        out.push_str(&label);
        out.push('\u{2502}');
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&" ".repeat(10));
    out.push('\u{2514}');
    out.push_str(&"\u{2500}".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "{}{:<} .. {} parallel tasks\n",
        " ".repeat(11),
        x_lo,
        x_hi
    ));
    for c in &model.ceilings {
        let glyph = match c.kind {
            CeilingKind::Node => '/',
            CeilingKind::System => '=',
        };
        out.push_str(&format!("  {glyph} {}\n", c.label));
    }
    if let Some(d) = &model.dot {
        out.push_str(&format!(
            "  O {} ({:.3e} tasks/s at x={})\n",
            d.label,
            d.tps.get(),
            d.x
        ));
    }
    out
}

/// Renders a Gantt chart as text: one row per task, `#` for execution,
/// `*` marking critical-path tasks.
pub fn gantt(chart: &GanttChart, width: usize) -> String {
    let width = width.clamp(20, 160);
    let mut out = String::new();
    out.push_str(&format!(
        "{} (makespan {:.2} s, critical path {:.2} s)\n",
        chart.name,
        chart.makespan,
        chart.critical_path_time()
    ));
    if chart.makespan <= 0.0 || chart.rows.is_empty() {
        out.push_str("  (empty)\n");
        return out;
    }
    let name_w = chart
        .rows
        .iter()
        .map(|r| r.name.len())
        .max()
        .unwrap_or(4)
        .min(24);
    for row in &chart.rows {
        let start = ((row.start / chart.makespan) * width as f64).round() as usize;
        let end = ((row.end / chart.makespan) * width as f64).round() as usize;
        let end = end.max(start + 1).min(width);
        let mut bar = vec![' '; width];
        let glyph = if row.on_critical_path { '#' } else { '+' };
        for cell in bar.iter_mut().take(end).skip(start) {
            *cell = glyph;
        }
        let mark = if row.on_critical_path { '*' } else { ' ' };
        let name: String = row.name.chars().take(name_w).collect();
        out.push_str(&format!(
            "{mark}{name:<name_w$} \u{2502}{}\u{2502} {:>8.1}s..{:<8.1}s ({} nodes)\n",
            bar.iter().collect::<String>(),
            row.start,
            row.end,
            row.nodes
        ));
    }
    out
}

/// Renders a set of time breakdowns as horizontal stacked bars with a
/// shared scale (Fig. 5b / Fig. 10b in text form).
pub fn breakdown(breakdowns: &[wrm_trace::TimeBreakdown], width: usize) -> String {
    let width = width.clamp(20, 160);
    let total_max = breakdowns
        .iter()
        .map(wrm_trace::TimeBreakdown::total)
        .fold(0.0f64, f64::max);
    let mut out = String::new();
    if total_max <= 0.0 {
        out.push_str("(no time recorded)\n");
        return out;
    }
    let glyphs = ['#', '%', '@', '+', 'x', 'o', ':', '~'];
    // Stable category order across bars: first appearance.
    let mut cats: Vec<String> = Vec::new();
    for b in breakdowns {
        for (c, _) in &b.categories {
            if !cats.contains(c) {
                cats.push(c.clone());
            }
        }
    }
    let label_w = breakdowns.iter().map(|b| b.label.len()).max().unwrap_or(4);
    for b in breakdowns {
        let mut bar = String::new();
        for (ci, cat) in cats.iter().enumerate() {
            let t = b.get(cat);
            let cells = ((t / total_max) * width as f64).round() as usize;
            bar.push_str(&glyphs[ci % glyphs.len()].to_string().repeat(cells));
        }
        out.push_str(&format!(
            "{:<label_w$} \u{2502}{bar:<width$}\u{2502} {:.1} s\n",
            b.label,
            b.total()
        ));
    }
    out.push_str("  legend:");
    for (ci, cat) in cats.iter().enumerate() {
        out.push_str(&format!(" {}={}", glyphs[ci % glyphs.len()], cat));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrm_core::{ids, machines, Bytes, Flops, Seconds, Work, WorkflowCharacterization};
    use wrm_dag::{list_schedule, Dag, Policy};
    use wrm_trace::TimeBreakdown;

    fn model() -> RooflineModel {
        let wf = WorkflowCharacterization::builder("demo")
            .total_tasks(2.0)
            .parallel_tasks(1.0)
            .nodes_per_task(64)
            .makespan(Seconds::secs(4184.86))
            .node_volume(ids::COMPUTE, Work::Flops(Flops::pflops(4390.0) / 64.0))
            .system_volume(ids::FILE_SYSTEM, Bytes::gb(70.0))
            .build()
            .unwrap();
        RooflineModel::build(&machines::perlmutter_gpu(), &wf).unwrap()
    }

    #[test]
    fn roofline_contains_all_elements() {
        let text = roofline(&model(), 72, 20);
        assert!(text.contains("demo on Perlmutter GPU"));
        assert!(text.contains('/'), "node ceiling glyph");
        assert!(text.contains('='), "system ceiling glyph");
        assert!(text.contains('|'), "wall glyph");
        assert!(text.contains('O'), "dot glyph");
        assert!(text.contains("GPU FLOPS"));
    }

    #[test]
    fn roofline_clamps_extreme_sizes() {
        let small = roofline(&model(), 1, 1);
        assert!(small.lines().count() >= 10);
        let large = roofline(&model(), 10_000, 10_000);
        assert!(large.lines().count() <= 100);
    }

    #[test]
    fn gantt_text() {
        let mut d = Dag::new("BGW");
        let e = d.add_task("Epsilon", 64, 180.0).unwrap();
        let s = d.add_task("Sigma", 64, 225.0).unwrap();
        d.add_dep(e, s).unwrap();
        let sched = list_schedule(&d, 1792, Policy::Fifo).unwrap();
        let chart = GanttChart::build(&d, &sched).unwrap();
        let text = gantt(&chart, 60);
        assert!(text.contains("BGW"));
        assert!(text.contains("Epsilon"));
        assert!(text.contains("Sigma"));
        assert!(text.contains('#'));
        assert!(text.contains('*'));
        // Sigma's bar starts after Epsilon's.
        let lines: Vec<&str> = text.lines().collect();
        let eps_line = lines.iter().find(|l| l.contains("Epsilon")).unwrap();
        let sig_line = lines.iter().find(|l| l.contains("Sigma")).unwrap();
        let eps_start = eps_line.find('#').unwrap();
        let sig_start = sig_line.find('#').unwrap();
        assert!(sig_start > eps_start);
    }

    #[test]
    fn gantt_empty() {
        let d = Dag::new("empty");
        let sched = list_schedule(&d, 4, Policy::Fifo).unwrap();
        let chart = GanttChart::build(&d, &sched).unwrap();
        assert!(gantt(&chart, 40).contains("(empty)"));
    }

    #[test]
    fn breakdown_bars() {
        let bars = vec![
            TimeBreakdown {
                label: "RCI".into(),
                categories: vec![("python".into(), 209.0), ("bash".into(), 295.0)],
            },
            TimeBreakdown {
                label: "Spawn".into(),
                categories: vec![("python".into(), 209.0)],
            },
        ];
        let text = breakdown(&bars, 60);
        assert!(text.contains("RCI"));
        assert!(text.contains("Spawn"));
        assert!(text.contains("legend:"));
        assert!(text.contains("python"));
        // RCI bar longer than Spawn bar.
        let rci_len = text.lines().next().unwrap().matches(['#', '%']).count();
        let spawn_len = text.lines().nth(1).unwrap().matches(['#', '%']).count();
        assert!(rci_len > spawn_len);
    }

    #[test]
    fn breakdown_empty() {
        assert!(breakdown(&[], 40).contains("no time recorded"));
    }
}
